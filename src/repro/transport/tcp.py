"""Framed request/response messaging over real TCP sockets.

All the real (non-simulated) GriddLeS services — the GNS server, the
Grid Buffer server and the GridFTP-like file server — speak framed
request/reply RPC in one of two interoperable framings:

* **legacy JSON**: a 4-byte big-endian length, a JSON header, and an
  optional binary payload.  The JSON header plays the role of the
  paper's SOAP envelope (self-describing, firewall-friendly single
  channel); the binary payload carries file blocks without base64
  overhead::

      +--------------+------------------+---------------------+
      | len(header)  |  header (JSON)   |  payload (binary)   |
      |  uint32 BE   |                  |                     |
      +--------------+------------------+---------------------+

  The header always contains ``"payload_len"`` so the receiver knows
  how many payload bytes follow.

* **binary**: a fixed 14-byte preamble plus a varint-packed field
  table (see :mod:`repro.transport.wire`), negotiated via the
  ``_wire`` capability probe on a client's first call.  Servers sniff
  the framing per frame off the first byte, so mixed-version peers
  interoperate without configuration.

The public ``RpcServer`` is the async-native engine from
:mod:`repro.transport.aio` (one event loop, no thread per
connection); :class:`ThreadedRpcServer` is the legacy thread-per-
connection JSON-only implementation, kept as the mixed-version interop
peer and the benchmark baseline.  :class:`RpcClient` stays a blocking,
pooled client — the sync facade — and negotiates the binary codec
transparently.
"""

from __future__ import annotations

import json
import os
import random
import socket
import socketserver
import struct
import threading
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Set, Tuple

from .. import faults, ioutil, obs
from ..obs import ops as obs_ops
from .wire import (
    CRC_TRAILER,
    CRC_TRAILER_SIZE,
    FLAG_CRC,
    KNOWN_FLAGS,
    MAGIC,
    PREAMBLE,
    PREAMBLE_SIZE,
    TRACE_KEY,
    WIRE_KEY,
    WIRE_VERSION,
    IntegrityError,
    WireError,
    advert_has_crc,
    build_binary_frame,
    build_json_frame,
    decode_binary_header,
)

__all__ = [
    "send_frame",
    "recv_frame",
    "FrameError",
    "IntegrityError",
    "RpcServer",
    "ThreadedRpcServer",
    "RpcClient",
    "RpcError",
    "RetryPolicy",
    "PoolTimeout",
    "ClientClosedError",
    "IDEMPOTENT_OPS",
]

_LEN = struct.Struct(">I")
MAX_HEADER = 16 * 1024 * 1024

_CLIENT_CALLS = obs.counter(
    "rpc_client_calls_total", "RPC round trips issued by clients", labelnames=("op",)
)
_CLIENT_ERRORS = obs.counter(
    "rpc_client_errors_total",
    "Client RPC failures by error kind",
    labelnames=("op", "kind"),
)
_SERVER_REQUESTS = obs.counter(
    "rpc_server_requests_total",
    "Requests dispatched by servers, by op and outcome",
    labelnames=("op", "status"),
)
_CLIENT_RETRIES = obs.counter(
    "rpc_retries_total",
    "Connection-level RPC failures recovered by redial + retry",
    labelnames=("op",),
)

#: Default RPC timeout; tests shrink it via REPRO_RPC_TIMEOUT so a hung
#: peer fails a test in seconds rather than stalling the whole suite.
DEFAULT_RPC_TIMEOUT = float(os.environ.get("REPRO_RPC_TIMEOUT", "30.0"))

#: Default connection-pool width per RpcClient.  The framing protocol
#: is strict request/reply, so in-flight depth equals connections; a
#: small pool lets one client carry concurrent calls (read-ahead
#: windows, store fan-out) without serialising behind a single lock.
DEFAULT_POOL_CONNECTIONS = max(1, int(os.environ.get("REPRO_RPC_POOL", "4")))

#: Payloads at or above this size are sent via ``socket.sendmsg``
#: (gather write) instead of being copied into one contiguous frame.
_SENDMSG_THRESHOLD = 64 * 1024

#: Connection-level retries after the first attempt (idempotent ops only).
DEFAULT_RPC_RETRIES = max(0, int(os.environ.get("REPRO_RPC_RETRIES", "3")))

#: Ops that are safe to replay after a connection-level failure because
#: re-running them cannot corrupt state: reads, probes, registrations
#: that early-return when already applied, and interval-set writes where
#: the same (offset, bytes) lands in the same place.  ``gb.write`` /
#: ``gb.write_multi`` are deliberately absent — they only become
#: retryable when the caller attaches a dedupe token and passes
#: ``retryable=True`` (see GridBufferClient).
IDEMPOTENT_OPS: FrozenSet[str] = frozenset(
    {
        # Ops plane (read-only probes)
        "_obs.health",
        "_obs.metrics",
        "_obs.spans_tail",
        # GridFTP-like file server
        "size",
        "exists",
        "get_block",
        "put_block",
        "checksum",
        "mkdirs",
        "pull_from",
        # Grid Buffer
        "gb.create",
        "gb.register_reader",
        "gb.read",
        "gb.read_multi",
        "gb.consume",
        "gb.consume_multi",
        "gb.close_writer",
        "gb.stats",
        "gb.exists",
        "gb.abort",
        "gb.resume",
        "gb.high_water",
        # Cooperative cache peer reads are pure cache lookups.
        "gb.peer_read",
        # GNS
        "gns.resolve",
        "gns.list",
        "gns.remove",
        # A watch is a read of the change log at ``from_revision``;
        # replaying it after a redial returns the same (or a later)
        # batch, so clients resume mid-watch across server death.
        # ``gns.txn`` is deliberately absent — it only becomes
        # retryable when the caller attaches a dedupe token (see
        # GnsClient.txn).
        "gns.watch",
    }
)


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with jitter for connection-level RPC retries.

    ``retries`` is the number of *re*-attempts after the first try.
    Delay before the Nth retry is ``base * multiplier**(N-1)`` capped at
    ``max_delay``, stretched by up to ``jitter`` fraction (drawn from
    the client's RNG, so a seeded client backs off deterministically).
    """

    retries: int = DEFAULT_RPC_RETRIES
    base: float = 0.05
    multiplier: float = 2.0
    max_delay: float = 2.0
    jitter: float = 0.25

    def backoff(self, attempt: int, rng: random.Random) -> float:
        delay = min(self.max_delay, self.base * self.multiplier ** (attempt - 1))
        if self.jitter:
            delay *= 1.0 + self.jitter * rng.random()
        return delay


class PoolTimeout(TimeoutError):
    """Checkout timed out waiting for a free pooled connection."""


class ClientClosedError(ConnectionError):
    """The client was close()d while this call was connecting."""


class FrameError(ConnectionError):
    """Malformed frame or closed connection mid-frame."""


class RpcError(RuntimeError):
    """Remote handler signalled an error."""

    def __init__(self, kind: str, message: str):
        super().__init__(f"{kind}: {message}")
        self.kind = kind
        self.message = message


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Receive exactly ``n`` bytes into one pre-sized buffer (no joins)."""
    if n == 0:
        return b""
    buf = bytearray(n)
    view = memoryview(buf)
    got = 0
    while got < n:
        r = sock.recv_into(view[got:], n - got)
        if not r:
            raise FrameError(f"connection closed with {n - got} bytes outstanding")
        got += r
    return bytes(buf)


#: Per-thread scratch buffer for :func:`send_frame` so the legacy JSON
#: send path allocates no fresh header bytes per frame.
_tls = threading.local()


def _send_prebuilt(
    sock: socket.socket, scratch: bytearray, payload: memoryview, trailer: bytes = b""
) -> None:
    """Send a frame whose header is already encoded into ``scratch``.

    Small payloads are appended to the scratch buffer for one
    contiguous ``sendall`` (one syscall, no new buffer); large ones go
    out via a gather write so a pre-assembled reply is never copied.
    ``trailer`` (the CRC bytes of a checksummed frame) rides the same
    syscall in both regimes.
    """
    if len(payload) < _SENDMSG_THRESHOLD or not hasattr(sock, "sendmsg"):
        scratch += payload
        if trailer:
            scratch += trailer
        sock.sendall(scratch)
        return
    hview = memoryview(scratch)
    try:
        segments: List[memoryview] = [hview, payload]
        if trailer:
            segments.append(memoryview(trailer))
        total = sum(len(seg) for seg in segments)
        sent = sock.sendmsg(segments)
        while sent < total:
            skip = sent
            pending: List[memoryview] = []
            for seg in segments:
                if skip >= len(seg):
                    skip -= len(seg)
                    continue
                pending.append(seg[skip:] if skip else seg)
                skip = 0
            sent += sock.sendmsg(pending)
    finally:
        # Release before returning: a live export would make the next
        # frame's buffer reuse (del scratch[:]) raise BufferError.
        hview.release()


def send_frame(sock: socket.socket, header: Dict[str, Any], payload: bytes = b"") -> None:
    """Send one legacy JSON frame (header dict + binary payload).

    ``payload`` may be any bytes-like object (``bytes``, ``bytearray``,
    ``memoryview``).  The header is encoded into a per-thread reusable
    scratch buffer.
    """
    payload = memoryview(payload)
    try:
        scratch = _tls.scratch
    except AttributeError:
        scratch = _tls.scratch = bytearray(256)
    build_json_frame(scratch, header, len(payload))
    _send_prebuilt(sock, scratch, payload)


def recv_frame(sock: socket.socket) -> Tuple[Dict[str, Any], bytes]:
    """Receive one frame; raises :class:`FrameError` on EOF/corruption."""
    hlen = _LEN.unpack(_recv_exact(sock, 4))[0]
    if hlen > MAX_HEADER:
        raise FrameError(f"header length {hlen} exceeds maximum")
    try:
        header = json.loads(_recv_exact(sock, hlen).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"bad header: {exc}") from exc
    if not isinstance(header, dict) or "payload_len" not in header:
        raise FrameError("header missing payload_len")
    payload = _recv_exact(sock, int(header["payload_len"]))
    return header, payload


Handler = Callable[[Dict[str, Any], bytes], Tuple[Dict[str, Any], bytes]]


class ThreadedRpcServer:
    """Legacy thread-per-connection server, JSON framing only.

    This was the ``RpcServer`` before the async engine landed.  It is
    kept (unchanged) for two jobs: the *old peer* in mixed-version wire
    compatibility tests — it never advertises the ``_wire`` capability,
    so negotiating clients correctly stay on JSON against it — and the
    baseline arm of the framing benchmarks.

    Register handlers with :meth:`register`; each handler receives
    ``(header, payload)`` and returns ``(reply_header, reply_payload)``.
    Exceptions become error replies rather than killing the connection.

    Use as a context manager or call :meth:`start` / :meth:`stop`.

    ``simulated_latency`` (seconds) delays every reply by one-way link
    latency twice (request + response legs), so benchmarks can A/B the
    pipelined IO paths over a slow link without leaving localhost.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, simulated_latency: float = 0.0):
        self._handlers: Dict[str, Handler] = {}
        obs_ops.install(self)
        self.simulated_latency = max(0.0, simulated_latency)
        self._conns: set = set()
        self._conns_lock = threading.Lock()
        outer = self

        class _ConnHandler(socketserver.BaseRequestHandler):
            def setup(self) -> None:
                with outer._conns_lock:
                    outer._conns.add(self.request)

            def finish(self) -> None:
                with outer._conns_lock:
                    outer._conns.discard(self.request)

            def handle(self) -> None:
                sock = self.request
                while True:
                    try:
                        header, payload = recv_frame(sock)
                    except (FrameError, OSError):  # fault-ok: peer hung up; normal teardown
                        return
                    if outer.simulated_latency:
                        time.sleep(2.0 * outer.simulated_latency)
                    op = header.get("op", "")
                    corrupt_reply = False
                    injector = faults.ACTIVE
                    if injector is not None:
                        try:
                            verdict = injector.fire("rpc.server", op, outer.peer_name)
                        except faults.InjectedFault as exc:
                            reply = {"ok": False, "error": "injected-fault", "message": str(exc)}
                            try:
                                send_frame(sock, reply, b"")
                            except OSError:  # fault-ok: peer already gone
                                return
                            continue
                        if verdict == "corrupt":
                            # Serve the request but flip bits in the reply
                            # payload: the connection stays healthy, only
                            # the data is wrong.
                            corrupt_reply = True
                        elif verdict is not None:
                            # "drop": swallow the request, no reply, kill the
                            # connection; "close": also reset both directions so
                            # the client's pending recv fails immediately.
                            if verdict == "close":
                                try:
                                    sock.shutdown(socket.SHUT_RDWR)
                                except OSError:  # fault-ok: already dead
                                    pass
                            return
                    handler = outer._handlers.get(op)
                    try:
                        if handler is None:
                            raise RpcError("unknown-op", f"no handler for {op!r}")
                        reply, data = handler(header, payload)
                        reply = dict(reply)
                        reply.setdefault("ok", True)
                        _SERVER_REQUESTS.labels(op=op, status="ok").inc()
                    except RpcError as exc:
                        reply, data = {"ok": False, "error": exc.kind, "message": exc.message}, b""
                        _SERVER_REQUESTS.labels(op=op, status="error").inc()
                    except Exception as exc:  # noqa: BLE001 - reply with error
                        reply, data = {"ok": False, "error": type(exc).__name__, "message": str(exc)}, b""
                        _SERVER_REQUESTS.labels(op=op, status="error").inc()
                    if corrupt_reply and data and injector is not None:
                        data = injector.corrupt_bytes(data)
                    try:
                        send_frame(sock, reply, data)
                    except OSError:  # fault-ok: peer hung up mid-reply; teardown
                        return

        class _Server(socketserver.ThreadingTCPServer):
            daemon_threads = True
            allow_reuse_address = True
            # Pooled clients open several connections in one burst (a
            # reader's window plus its demand connection, times N
            # readers).  The socketserver default backlog of 5 drops
            # SYNs under that burst and the kernel's ~1 s retransmit
            # timer turns each drop into a visible stall.
            request_queue_size = 128

        self._server = _Server((host, port), _ConnHandler)
        self._thread: Optional[threading.Thread] = None
        #: Label used by the fault injector to match ``peer=`` globs.
        addr = self._server.server_address
        self.peer_name = f"{addr[0]}:{addr[1]}"

    @property
    def address(self) -> Tuple[str, int]:
        return self._server.server_address  # type: ignore[return-value]

    def register(self, op: str, handler: Handler) -> None:
        self._handlers[op] = handler

    def start(self) -> "ThreadedRpcServer":
        # The default serve_forever poll interval (0.5 s) makes every
        # stop() wait out the tail of a poll cycle — multiplied by a few
        # hundred server fixtures that dominates the test suite's time.
        self._thread = threading.Thread(
            target=lambda: self._server.serve_forever(poll_interval=0.05), daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def disconnect_all(self) -> None:
        """Forcibly drop every established connection.

        :meth:`stop` only closes the listening socket — handler threads
        keep serving connections they already hold.  A restart that is
        supposed to *look* like a crash (the chaos suite's Grid Buffer
        bounce) calls this so clients actually observe their
        connections dying and exercise redial + resume.
        """
        with self._conns_lock:
            conns = list(self._conns)
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:  # fault-ok: connection already gone
                pass

    def __enter__(self) -> "ThreadedRpcServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


class _Conn:
    """One pooled socket plus its reusable receive/send scratch buffers.

    ``rbuf`` batches the reply preamble + header + small payloads into
    a single ``recv`` syscall; ``scratch`` is the preallocated send
    header buffer, so the steady-state call path allocates no per-frame
    header bytes in either direction.
    """

    __slots__ = ("sock", "rbuf", "scratch")

    def __init__(self, sock: socket.socket):
        self.sock = sock
        self.rbuf = bytearray()
        self.scratch = bytearray(256)


def _conn_fill(conn: _Conn, n: int) -> None:
    """Ensure at least ``n`` bytes are buffered on ``conn``."""
    buf = conn.rbuf
    sock = conn.sock
    while len(buf) < n:
        chunk = sock.recv(65536)
        if not chunk:
            raise FrameError(f"connection closed with {n - len(buf)} bytes outstanding")
        buf += chunk


def _conn_take(conn: _Conn, n: int) -> bytes:
    out = bytes(conn.rbuf[:n])
    del conn.rbuf[:n]
    return out


def _conn_recv_payload(conn: _Conn, n: int) -> bytes:
    """Payload receive: drain buffered bytes, then ``recv_into`` the rest."""
    if n == 0:
        return b""
    buf = conn.rbuf
    if len(buf) >= n:
        return _conn_take(conn, n)
    out = bytearray(n)
    have = len(buf)
    out[:have] = buf
    del buf[:]
    view = memoryview(out)
    got = have
    while got < n:
        r = conn.sock.recv_into(view[got:], n - got)
        if not r:
            raise FrameError(f"connection closed with {n - got} bytes outstanding")
        got += r
    view.release()
    return bytes(out)


def _conn_send_frame(
    conn: _Conn, header: Dict[str, Any], payload, codec: str, corrupter=None
) -> None:
    """Send one frame in ``codec`` framing.

    ``corrupter`` (a :class:`repro.faults.FaultInjector`, chaos only)
    flips payload bits *after* any CRC trailer is computed — modelling
    corruption on the wire, which is exactly what the trailer exists to
    catch.
    """
    payload = memoryview(payload)
    if codec == "json":
        build_json_frame(conn.scratch, header, len(payload))
        trailer = b""
    else:
        crc_on = codec == "binary+crc"
        build_binary_frame(conn.scratch, header, len(payload), FLAG_CRC if crc_on else 0)
        trailer = CRC_TRAILER.pack(ioutil.crc32(payload)) if crc_on else b""
    if corrupter is not None and len(payload):
        payload = memoryview(corrupter.corrupt_bytes(bytes(payload)))
    _send_prebuilt(conn.sock, conn.scratch, payload, trailer)


def _conn_recv_frame(conn: _Conn) -> Tuple[Dict[str, Any], bytes]:
    """Receive one reply in either framing (sniffed off the first byte).

    A checksummed binary frame (``FLAG_CRC``) has its 4-byte trailer
    consumed and verified here; a mismatch raises
    :class:`IntegrityError` *after* the stream position is restored
    past the full frame, so the failure is about the data, not framing.
    """
    _conn_fill(conn, 1)
    if conn.rbuf[0] == MAGIC:
        _conn_fill(conn, PREAMBLE_SIZE)
        _magic, version, flags, opid, flen, plen = PREAMBLE.unpack_from(conn.rbuf, 0)
        del conn.rbuf[:PREAMBLE_SIZE]
        if version != WIRE_VERSION:
            raise FrameError(f"unsupported wire version {version}")
        if flags & ~KNOWN_FLAGS:
            # Unknown flags may imply trailer bytes we cannot account
            # for — reading on would desynchronise the stream.
            raise FrameError(f"unsupported wire flags 0x{flags:02x}")
        _conn_fill(conn, flen)
        fields = _conn_take(conn, flen)
        payload = _conn_recv_payload(conn, plen)
        want_crc = -1
        if flags & FLAG_CRC:
            want_crc = CRC_TRAILER.unpack(_conn_recv_payload(conn, CRC_TRAILER_SIZE))[0]
        try:
            header = decode_binary_header(opid, fields, plen)
        except WireError as exc:
            raise FrameError(f"bad binary header: {exc}") from exc
        if want_crc >= 0:
            got = ioutil.crc32(payload)
            if got != want_crc:
                raise IntegrityError(
                    f"payload CRC mismatch on {header.get('op', '?')!r} frame: "
                    f"got {got:#010x} want {want_crc:#010x} ({plen} bytes)"
                )
        return header, payload
    _conn_fill(conn, 4)
    hlen = int.from_bytes(conn.rbuf[:4], "big")
    del conn.rbuf[:4]
    if hlen > MAX_HEADER:
        raise FrameError(f"header length {hlen} exceeds maximum")
    _conn_fill(conn, hlen)
    try:
        header = json.loads(_conn_take(conn, hlen).decode("utf-8"))
    except (ValueError, UnicodeDecodeError) as exc:
        raise FrameError(f"bad header: {exc}") from exc
    if not isinstance(header, dict) or "payload_len" not in header:
        raise FrameError("header missing payload_len")
    payload = _conn_recv_payload(conn, int(header["payload_len"]))
    return header, payload


class RpcClient:
    """Blocking client carrying a small pool of connections to one server.

    The framing protocol is strict request/reply per connection, so the
    pool is what allows *concurrent in-flight calls* on one client:
    each :meth:`call` checks a connection out, runs its round trip with
    no client-wide lock held, and checks it back in.  Up to
    ``max_connections`` callers proceed in parallel; excess callers
    wait for a free connection.  Connections are created lazily, so a
    client used from one thread still holds exactly one socket.

    ``wire`` pins the frame codec: ``"json"`` (always interoperable),
    ``"binary"`` (requires a binary-capable server), or ``None`` — the
    default — to negotiate.  Negotiation costs nothing: the first call
    goes out as JSON carrying the ``_wire`` probe key; a binary-capable
    server echoes the key in its reply and the client pins binary for
    every later frame, while an old server ignores it and the client
    stays on JSON.  A connection-level failure while pinned to binary
    un-pins (the peer may have been downgraded mid-flight), so the next
    attempt re-probes with a frame any server can parse.

    The same probe negotiates per-frame CRC: a server that advertises
    the ``"crc"`` capability in its probe reply gets checksummed binary
    frames from then on (the ``FLAG_CRC`` trailer, verified both ways),
    unless ``crc=False`` or ``REPRO_WIRE_CRC=0`` opts out.  Neither
    side ever sends a trailer to a peer that has not advertised it, so
    mixed-version fleets interoperate unchecksummed.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        max_connections: Optional[int] = None,
        retry: Optional[RetryPolicy] = None,
        wire: Optional[str] = None,
        crc: Optional[bool] = None,
    ):
        self._addr = (host, port)
        self._peer = f"{host}:{port}"
        self._timeout = DEFAULT_RPC_TIMEOUT if timeout is None else timeout
        self._max = max(1, int(max_connections if max_connections is not None
                               else DEFAULT_POOL_CONNECTIONS))
        self._retry = retry if retry is not None else RetryPolicy()
        self._rng = random.Random()
        forced = wire if wire is not None else (os.environ.get("REPRO_WIRE") or None)
        if forced not in (None, "json", "binary"):
            raise ValueError(f"wire must be 'json' or 'binary', not {forced!r}")
        self._forced = forced
        if crc is None:
            crc = os.environ.get("REPRO_WIRE_CRC", "1") != "0"
        self._want_crc = bool(crc)
        self._codec: Optional[str] = forced  # None until negotiated
        self._cv = threading.Condition()
        self._idle: List[_Conn] = []
        self._inflight: Set[_Conn] = set()   # connections currently checked out
        self._active = 0
        self._gen = 0             # bumped by close(): stale checkouts die

    def clone(self) -> "RpcClient":
        """A fresh, unconnected client to the same server.

        Background pipelines (prefetcher threads, parallel streams) use
        clones when they want connections whose blocking calls can
        never contend with the owner's pool at all.
        """
        return RpcClient(
            *self._addr,
            timeout=self._timeout,
            max_connections=self._max,
            retry=self._retry,
            wire=self._forced,
            crc=self._want_crc,
        )

    def _new_conn(self) -> _Conn:
        sock = socket.create_connection(self._addr, timeout=self._timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return _Conn(sock)

    def _checkout(self) -> Tuple[_Conn, int]:
        deadline = time.monotonic() + self._timeout if self._timeout else None
        with self._cv:
            while True:
                if self._idle:
                    self._active += 1
                    conn = self._idle.pop()
                    self._inflight.add(conn)
                    return conn, self._gen
                if self._active < self._max:
                    self._active += 1
                    gen = self._gen
                    break
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    raise PoolTimeout(
                        f"no free RPC connection to {self._peer} within "
                        f"{self._timeout}s (pool={self._max}, in_flight={self._active}, "
                        f"idle={len(self._idle)}, gen={self._gen})"
                    )
                self._cv.wait(timeout=remaining)
        # Connect outside the lock: a slow handshake must not block the pool.
        try:
            conn = self._new_conn()
        except BaseException:
            with self._cv:
                self._active -= 1
                self._cv.notify()
            raise
        with self._cv:
            if gen != self._gen:
                # close()/close_all() raced our connect: honour it.  Without
                # this re-check the fresh socket joins _inflight *after* the
                # close snapshot and survives a shutdown that promised to
                # kill every in-flight call.
                self._active -= 1
                self._cv.notify()
                try:
                    conn.sock.close()
                except OSError:  # pragma: no cover  # fault-ok: best-effort close
                    pass
                raise ClientClosedError(
                    f"RPC client to {self._peer} closed during connect "
                    f"(gen {gen} -> {self._gen})"
                )
            self._inflight.add(conn)
        return conn, gen

    def _checkin(self, conn: _Conn, gen: int) -> None:
        with self._cv:
            self._active -= 1
            self._inflight.discard(conn)
            if gen == self._gen:
                self._idle.append(conn)
                self._cv.notify()
                return
            self._cv.notify()
        conn.sock.close()  # client was close()d while this call was in flight

    def _discard(self, conn: _Conn, gen: int) -> None:
        with self._cv:
            self._active -= 1
            self._inflight.discard(conn)
            self._cv.notify()
        try:
            conn.sock.close()
        except OSError:  # pragma: no cover  # fault-ok: close never meaningfully fails
            pass

    def call(
        self,
        op: str,
        header: Optional[Dict[str, Any]] = None,
        payload: bytes = b"",
        retryable: Optional[bool] = None,
    ) -> Tuple[Dict[str, Any], bytes]:
        """One round trip; raises :class:`RpcError` on remote failure.

        Connection-level failures (``OSError``/``FrameError``) discard
        the pooled socket and, for idempotent ops, redial and replay the
        call with exponential backoff.  ``retryable`` overrides the
        :data:`IDEMPOTENT_OPS` table — callers that attach their own
        dedupe token (e.g. ``gb.write_multi``) pass ``True``.  An
        :class:`RpcError` reply is never retried: the request was
        delivered and the server answered.
        """
        msg = dict(header or {})
        msg["op"] = op
        _CLIENT_CALLS.labels(op=op).inc()
        tracer = obs.get_tracer()
        span = None
        if tracer.sink is not None:
            # One span per logical call (retries included): its duration
            # is the caller-observed latency, and the handler span on the
            # remote side parents under it via the _trace header.  Stack-
            # free because no local child spans open under it.
            span = tracer.start_span(
                "rpc.client", parent=tracer.current_context(), op=op, peer=self._peer
            )
            msg[TRACE_KEY] = span.context.to_wire()
        try:
            reply, data = self._roundtrip(msg, op, payload, retryable)
        except BaseException as exc:
            if span is not None:
                tracer.finish_span(span, error=f"{type(exc).__name__}: {exc}")
            raise
        if span is not None:
            tracer.finish_span(span)
        return reply, data

    def _roundtrip(
        self,
        msg: Dict[str, Any],
        op: str,
        payload: bytes,
        retryable: Optional[bool],
    ) -> Tuple[Dict[str, Any], bytes]:
        if retryable is None:
            retryable = op in IDEMPOTENT_OPS
        attempts = 1 + (self._retry.retries if retryable else 0)
        attempt = 0
        while True:
            attempt += 1
            conn = None
            gen = -1
            probe = False
            try:
                conn, gen = self._checkout()
                codec = self._codec
                send_msg = msg
                if codec is None:
                    # First contact: probe as JSON (any server parses it)
                    # carrying the binary-capability key.
                    probe = True
                    codec = "json"
                    send_msg = dict(msg)
                    send_msg[WIRE_KEY] = WIRE_VERSION
                corrupter = None
                injector = faults.ACTIVE
                if injector is not None:
                    verdict = injector.fire("rpc.client", op, self._peer)
                    if verdict == "corrupt":
                        # Flip bits in the outgoing request payload (after
                        # checksumming): the socket stays up; only the
                        # receiver's CRC check can notice.
                        corrupter = injector
                    elif verdict is not None:
                        # "close"/"drop": kill the connection under the call so
                        # the real send/recv path fails organically.
                        try:
                            conn.sock.shutdown(socket.SHUT_RDWR)
                        except OSError:  # fault-ok: socket already dead
                            pass
                _conn_send_frame(conn, send_msg, payload, codec, corrupter)
                reply, data = _conn_recv_frame(conn)
            except (PoolTimeout, ClientClosedError):
                raise  # pool exhaustion / shutdown: retrying cannot help
            except (OSError, FrameError) as exc:
                if conn is not None:
                    self._discard(conn, gen)
                if isinstance(exc, IntegrityError):
                    # The peer is healthy and still speaks the pinned
                    # codec — the data was corrupted.  Keep the codec,
                    # count the detection, and re-request the frame.
                    ioutil.count_integrity_error("rpc.client", "retry")
                elif self._codec not in (None, "json") and self._forced is None:
                    # The peer may have been bounced onto an older build
                    # that cannot parse binary frames; forget the pinned
                    # codec so the next attempt re-probes with JSON.
                    self._codec = None
                _CLIENT_ERRORS.labels(op=op, kind=type(exc).__name__).inc()
                with self._cv:
                    # A generation bump means *our own* close()/close_all()
                    # killed this socket: the owner wants shutdown, so
                    # redialing would undo it.  Only external failures retry.
                    closed_locally = gen != -1 and gen != self._gen
                if closed_locally or attempt >= attempts:
                    raise
                _CLIENT_RETRIES.labels(op=op).inc()
                time.sleep(self._retry.backoff(attempt, self._rng))
                continue
            break
        self._checkin(conn, gen)
        if probe:
            advert = reply.get(WIRE_KEY)
            if advert is None:
                self._codec = "json"
            elif self._want_crc and advert_has_crc(advert):
                self._codec = "binary+crc"
            else:
                self._codec = "binary"
        reply.pop(WIRE_KEY, None)
        if not reply.get("ok", False):
            kind = reply.get("error", "remote-error")
            _CLIENT_ERRORS.labels(op=op, kind=kind).inc()
            raise RpcError(kind, reply.get("message", ""))
        return reply, data

    def close(self) -> None:
        """Close idle connections now; in-flight ones close on check-in.

        Closing also unblocks calls parked in a server-side wait (their
        socket dies under them), which is what lets reader shutdown
        join background threads that are mid-RPC.
        """
        with self._cv:
            self._gen += 1
            idle, self._idle = self._idle, []
            self._cv.notify_all()
        for conn in idle:
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover  # fault-ok: best-effort close
                pass

    def close_all(self) -> None:
        """Hard close: also shut down sockets currently mid-round-trip.

        A plain :meth:`close` leaves checked-out sockets alive until
        their call returns; this forces those calls to fail *now*,
        which is how reader teardown unblocks a background thread
        parked in a server-side blocking read.
        """
        with self._cv:
            self._gen += 1
            idle, self._idle = self._idle, []
            inflight = list(self._inflight)
            self._cv.notify_all()
        for conn in idle:
            try:
                conn.sock.close()
            except OSError:  # pragma: no cover  # fault-ok: best-effort close
                pass
        for conn in inflight:
            try:
                conn.sock.shutdown(socket.SHUT_RDWR)
            except OSError:  # fault-ok: socket already dead
                pass

    def __enter__(self) -> "RpcClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def __getattr__(name: str):
    # The public RpcServer is the async-native engine in aio.py, which
    # itself imports this module's primitives (exceptions, counters,
    # retry policy).  Resolving the name lazily via PEP 562 breaks the
    # import cycle regardless of which module is imported first.
    if name == "RpcServer":
        from .aio import AsyncRpcServer

        return AsyncRpcServer
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
