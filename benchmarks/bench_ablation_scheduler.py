"""Ablation A5: automatic scheduling vs the paper's hand placements.

The paper's Section 6 sketches a scheduler aware of the copy-vs-buffer
constraint; this bench runs our implementation of it (autoplace +
economy) over the climate workflow on the calibrated testbed and checks
that it discovers paper-quality (or better) configurations, *validated
by the discrete-event simulator* rather than its own estimate.
"""

from repro.apps.climate import TABLE5_PAPER, climate_sim_workflow, split_plan
from repro.bench.tables import TableBuilder, hms
from repro.grid.testbed import TESTBED
from repro.grid.testbed import testbed_topology as _topology  # avoid "test" name collection
from repro.workflow.autoplace import greedy_placement, links_from_network
from repro.workflow.economy import QosGoal, economy_schedule
from repro.workflow.simrunner import simulate_plan

MACHINES = ["brecca", "dione", "vpac27", "freak", "bouscat"]

#: Grid-dollars per CPU-second; faster machines cost more.
PRICES = {"brecca": 8.0, "dione": 4.0, "vpac27": 1.5, "freak": 4.0, "bouscat": 1.5}


def run_ablation():
    machines = {n: TESTBED[n] for n in MACHINES}
    links = links_from_network(sorted(MACHINES), _topology())
    wf = climate_sim_workflow()

    # Baseline: the best configuration the paper measured (min over the
    # Table 5 pairings and both mechanisms).
    paper_best = min(min(v) for v in TABLE5_PAPER.values())

    # Our scheduler's pick, validated with the DES.
    auto = greedy_placement(wf, machines, links)
    auto_sim = simulate_plan(auto.plan).makespan

    # Economy mode: cheapest plan that still beats the paper's best.
    econ = economy_schedule(
        climate_sim_workflow(),
        machines,
        links,
        PRICES,
        QosGoal(deadline=paper_best * 1.2, optimise="cheapest"),
    )
    table = TableBuilder(
        "Ablation A5 — automatic scheduling of the climate workflow",
        ["configuration", "placement", "coupling", "simulated total"],
    )
    brecca_all = simulate_plan(split_plan("brecca", "brecca", "buffer")).makespan
    table.add_row(
        "paper best (Table 5 grid search)",
        "hand-chosen",
        "hand-chosen",
        hms(paper_best),
    )
    table.add_row(
        "greedy auto-placement",
        ", ".join(f"{s}@{m}" for s, m in auto.plan.placement.items()),
        ", ".join(f"{f}:{c}" for f, c in auto.plan.coupling.items()),
        hms(auto_sim),
    )
    if econ is not None:
        econ_sim = simulate_plan(econ.plan).makespan
        table.add_row(
            "economy (cheapest within 1.2x paper best)",
            ", ".join(f"{s}@{m}" for s, m in econ.plan.placement.items()),
            f"cost {econ.cost:.0f} G$",
            hms(econ_sim),
        )
    table.add_check(
        "auto-placement is at least as good as the paper's best hand choice (±10%)",
        auto_sim <= paper_best * 1.1,
    )
    table.add_check(
        "all-on-brecca pipelined is the structural optimum the scheduler should find",
        auto_sim <= brecca_all * 1.1,
    )
    table.add_check("economy mode found a feasible cheap plan", econ is not None)
    if econ is not None:
        table.add_check(
            "the economy plan's *simulated* time also meets the deadline",
            simulate_plan(econ.plan).makespan <= paper_best * 1.2,
        )
    return table


def test_ablation_scheduler(once):
    table = once(run_ablation)
    table.print()
    assert table.all_checks_pass
