"""GriddLeS File Multiplexer reproduction.

Reproduction of D. Abramson & J. Kommineni, *A Flexible IO Scheme for
Grid Workflows* (IPPS 2004).  The package provides:

* :mod:`repro.core` — the File Multiplexer: six IO modes behind plain
  ``open/read/write/seek/close``, re-wirable at run time via the GNS.
* :mod:`repro.gns` — the GriddLeS Name Service.
* :mod:`repro.gridbuffer` — the Grid Buffer streaming service.
* :mod:`repro.transport` — GridFTP-like transfers and framed TCP RPC.
* :mod:`repro.grid` — the calibrated testbed model (machines, WAN, NWS,
  replica catalogue).
* :mod:`repro.sim` — the deterministic discrete-event engine.
* :mod:`repro.obs` — unified metrics registry and span tracing across
  the FM, transports, Grid Buffer and workflow runner.
* :mod:`repro.workflow` — workflow specs, scheduling, real and
  simulated execution.
* :mod:`repro.apps` — the two case studies (durability pipeline,
  nested climate models).
* :mod:`repro.bench` — drivers regenerating every evaluation table and
  figure.

Quickstart::

    from repro.workflow import RealRunner, plan_workflow
    from repro.apps.climate import climate_workflow

    wf = climate_workflow()
    plan = plan_workflow(
        wf,
        {"ccam": "hostA", "cc2lam": "hostA", "darlam": "hostB"},
        coupling={"ccam_hist": "buffer", "lam_input": "buffer"},
    )
    result = RealRunner(plan, params={"nsteps": 8}).run()
    assert result.ok
"""

from .core import (
    AccessPolicy,
    FileMultiplexer,
    FMFile,
    GridContext,
    IOMode,
    RecordSchema,
    ReplicaSelector,
    interposed,
)
from .gns import BufferEndpoint, GnsRecord, GnsServer, NameService
from .gridbuffer import GridBufferClient, GridBufferServer, GridBufferService
from .workflow import (
    ExecutionPlan,
    RealRunner,
    Stage,
    Workflow,
    plan_workflow,
    simulate_plan,
)

__version__ = "1.0.0"

__all__ = [
    "AccessPolicy",
    "FileMultiplexer",
    "FMFile",
    "GridContext",
    "IOMode",
    "RecordSchema",
    "ReplicaSelector",
    "interposed",
    "BufferEndpoint",
    "GnsRecord",
    "GnsServer",
    "NameService",
    "GridBufferClient",
    "GridBufferServer",
    "GridBufferService",
    "ExecutionPlan",
    "RealRunner",
    "Stage",
    "Workflow",
    "plan_workflow",
    "simulate_plan",
    "__version__",
]
