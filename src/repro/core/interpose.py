"""Interposition of ``builtins.open`` — the LD_PRELOAD analogue.

The paper hooks libc IO in unmodified Fortran/C binaries via the Bypass
toolkit.  The closest faithful equivalent for Python "legacy"
applications is patching ``builtins.open`` for the duration of a
workflow stage: code written against the ordinary file API runs
unchanged, while every open is routed through the File Multiplexer.

Paths outside the FM's jurisdiction (Python internals, site-packages,
anything not matching ``prefixes``) fall through to the real ``open``
so the interpreter keeps working.

Usage::

    with interposed(fm, prefixes=("/data/",)):
        legacy_main()          # its open("/data/JOB.DAT") goes via the FM

Text modes are honoured by wrapping the FM's binary handle in a
:class:`io.TextIOWrapper`, exactly how CPython builds text files.
"""

from __future__ import annotations

import builtins
import io
import threading
from contextlib import contextmanager
from typing import Optional, Sequence

from .multiplexer import FileMultiplexer

__all__ = ["interposed", "FmOpen"]

_real_open = open
_patch_lock = threading.Lock()


class FmOpen:
    """A drop-in ``open`` replacement routing matching paths via an FM."""

    def __init__(
        self,
        fm: FileMultiplexer,
        prefixes: Sequence[str] = ("/",),
        buffer_size: int = io.DEFAULT_BUFFER_SIZE,
    ):
        if not prefixes:
            raise ValueError("need at least one path prefix to intercept")
        self.fm = fm
        self.prefixes = tuple(prefixes)
        self.buffer_size = buffer_size

    def _intercepts(self, file) -> bool:
        return isinstance(file, str) and any(file.startswith(p) for p in self.prefixes)

    def __call__(
        self,
        file,
        mode: str = "r",
        buffering: int = -1,
        encoding: Optional[str] = None,
        errors: Optional[str] = None,
        newline: Optional[str] = None,
        closefd: bool = True,
        opener=None,
    ):
        if not self._intercepts(file) or "x" in mode:
            return _real_open(
                file, mode, buffering, encoding, errors, newline, closefd, opener
            )
        binary = "b" in mode
        if buffering == 0 and not binary:
            raise ValueError("can't have unbuffered text I/O")
        raw = self.fm.open(file, mode)
        reading = raw.readable() and not raw.writable()
        if buffering == 0:
            return raw
        if reading:
            buffered: io.IOBase = io.BufferedReader(raw, buffer_size=self.buffer_size)
        elif raw.writable() and not raw.readable():
            buffered = io.BufferedWriter(raw, buffer_size=self.buffer_size)
        else:
            buffered = io.BufferedRandom(raw, buffer_size=self.buffer_size)
        if binary:
            return buffered
        text = io.TextIOWrapper(buffered, encoding=encoding or "utf-8", errors=errors, newline=newline)
        text.mode = mode  # mirror CPython behaviour
        return text


@contextmanager
def interposed(fm: FileMultiplexer, prefixes: Sequence[str] = ("/",)):
    """Patch ``builtins.open`` so legacy code runs through ``fm``.

    Re-entrant patching from multiple threads is serialized; nested use
    with the *same* prefixes is allowed, with innermost winning.
    """
    fm_open = FmOpen(fm, prefixes)
    with _patch_lock:
        previous = builtins.open
        builtins.open = fm_open
    try:
        yield fm_open
    finally:
        with _patch_lock:
            builtins.open = previous
