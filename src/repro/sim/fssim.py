"""Simulated local file systems (per-machine disks).

Each machine owns one :class:`Disk` whose bandwidth is shared across
concurrent IO in processor-sharing fashion, plus a per-operation seek
cost.  On top of the disk, :class:`SimFileSystem` keeps an in-memory
namespace so simulated workflow stages can create, copy and stat files
without touching the real file system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from .engine import Environment, Event
from .resources import ProcessorSharing

__all__ = ["DiskSpec", "Disk", "SimFile", "SimFileSystem"]


@dataclass(frozen=True)
class DiskSpec:
    """Throughput model of a local disk (2004-era IDE/SCSI by default)."""

    read_bandwidth: float = 40e6   # bytes/s
    write_bandwidth: float = 30e6  # bytes/s
    seek_time: float = 8e-3        # seconds per operation batch

    def __post_init__(self) -> None:
        if self.read_bandwidth <= 0 or self.write_bandwidth <= 0:
            raise ValueError("disk bandwidths must be positive")
        if self.seek_time < 0:
            raise ValueError("seek_time must be >= 0")


class Disk:
    """A shared-bandwidth disk."""

    def __init__(self, env: Environment, spec: DiskSpec = DiskSpec()):
        self.env = env
        self.spec = spec
        self._read_pipe = ProcessorSharing(env, speed=spec.read_bandwidth)
        self._write_pipe = ProcessorSharing(env, speed=spec.write_bandwidth)

    def read(self, nbytes: int, seeks: int = 1) -> Event:
        return self._io(self._read_pipe, nbytes, seeks)

    def write(self, nbytes: int, seeks: int = 1) -> Event:
        return self._io(self._write_pipe, nbytes, seeks)

    def _io(self, pipe: ProcessorSharing, nbytes: int, seeks: int) -> Event:
        if nbytes < 0:
            raise ValueError("nbytes must be >= 0")
        done = self.env.event()

        def go():
            if seeks:
                yield self.env.timeout(seeks * self.spec.seek_time)
            if nbytes:
                yield pipe.compute(float(nbytes))
            done.succeed(nbytes)
            return None

        self.env.process(go(), name="disk-io")
        return done


@dataclass
class SimFile:
    """Metadata for one simulated file."""

    path: str
    size: int = 0
    mtime: float = 0.0
    host: str = ""

    def __post_init__(self) -> None:
        if self.size < 0:
            raise ValueError("size must be >= 0")


class SimFileSystem:
    """In-memory namespace over one simulated disk.

    Only sizes and times are tracked — file *contents* in the simulator
    are abstract (the real FM implementation moves real bytes; the
    simulator reproduces timing).
    """

    def __init__(self, env: Environment, host: str, disk: Optional[Disk] = None):
        self.env = env
        self.host = host
        self.disk = disk if disk is not None else Disk(env)
        self._files: Dict[str, SimFile] = {}

    # -- namespace ----------------------------------------------------------
    def exists(self, path: str) -> bool:
        return path in self._files

    def stat(self, path: str) -> SimFile:
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFoundError(f"{self.host}:{path}") from None

    def listdir(self) -> list[str]:
        return sorted(self._files)

    def unlink(self, path: str) -> None:
        if path not in self._files:
            raise FileNotFoundError(f"{self.host}:{path}")
        del self._files[path]

    # -- timed IO -------------------------------------------------------------
    def write_file(self, path: str, nbytes: int, append: bool = False) -> Event:
        """Write (or append) ``nbytes`` to ``path``; returns completion event."""
        done = self.env.event()

        def go():
            yield self.disk.write(nbytes)
            entry = self._files.get(path)
            if entry is None or not append:
                entry = SimFile(path=path, size=0, host=self.host)
                self._files[path] = entry
            entry.size += nbytes
            entry.mtime = self.env.now
            done.succeed(entry)
            return None

        self.env.process(go(), name=f"fs-write:{path}")
        return done

    def read_file(self, path: str, nbytes: Optional[int] = None) -> Event:
        """Read ``nbytes`` (default: whole file) from ``path``."""
        entry = self.stat(path)
        amount = entry.size if nbytes is None else min(nbytes, entry.size)
        return self.disk.read(amount)

    def touch(self, path: str, size: int = 0) -> SimFile:
        """Create a file instantly (setup helper, no disk time charged)."""
        entry = SimFile(path=path, size=size, mtime=self.env.now, host=self.host)
        self._files[path] = entry
        return entry
