"""Tests for span tracing (repro.obs.spans)."""

import json
import threading

from repro.obs.spans import JsonLinesSink, MemorySink, Tracer


class TestNesting:
    def test_parent_child_same_thread(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("workflow", workflow="climate"):
            with tracer.span("task", task="ccam"):
                pass
        [task, workflow] = sink.records  # inner closes first
        assert task["name"] == "task"
        assert workflow["name"] == "workflow"
        assert task["parent"] == workflow["span"]
        assert task["trace"] == workflow["trace"]
        assert task["dur"] >= 0

    def test_siblings_share_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("root"):
            with tracer.span("a"):
                pass
            with tracer.span("b"):
                pass
        a, b, root = sink.records
        assert a["parent"] == root["span"]
        assert b["parent"] == root["span"]

    def test_independent_roots_get_distinct_traces(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("one"):
            pass
        with tracer.span("two"):
            pass
        one, two = sink.records
        assert one["trace"] != two["trace"]

    def test_error_recorded_and_raised(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        try:
            with tracer.span("boom"):
                raise ValueError("bad input")
        except ValueError:
            pass
        else:  # pragma: no cover
            raise AssertionError("span swallowed the exception")
        [record] = sink.records
        assert record["attrs"]["error"] == "ValueError: bad input"

    def test_set_attrs_mid_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("s") as span:
            span.set(bytes_moved=42)
        assert sink.records[0]["attrs"]["bytes_moved"] == 42


class TestCrossThread:
    def test_attach_propagates_parent(self):
        sink = MemorySink()
        tracer = Tracer(sink)

        def worker(ctx):
            with tracer.attach(ctx):
                with tracer.span("task", task="worker"):
                    pass

        with tracer.span("workflow") as wf:
            t = threading.Thread(target=worker, args=(tracer.current_context(),))
            t.start()
            t.join()
            wf_span_id = wf.span_id
        task = sink.spans("task")[0]
        assert task["parent"] == wf_span_id
        assert task["thread"] != sink.spans("workflow")[0]["thread"]

    def test_attach_none_is_noop(self):
        tracer = Tracer(MemorySink())
        with tracer.attach(None):
            assert tracer.current_context() is None

    def test_threads_have_independent_stacks(self):
        tracer = Tracer(MemorySink())
        seen = {}

        def worker():
            seen["ctx"] = tracer.current_context()

        with tracer.span("outer"):
            t = threading.Thread(target=worker)
            t.start()
            t.join()
        assert seen["ctx"] is None  # no implicit inheritance


class TestEventsAndSinks:
    def test_event_parents_under_current_span(self):
        sink = MemorySink()
        tracer = Tracer(sink)
        with tracer.span("task") as span:
            tracer.event("fm.read", path="/x", detail=4096)
        event = [r for r in sink.records if r["type"] == "event"][0]
        assert event["parent"] == span.span_id
        assert event["attrs"]["path"] == "/x"

    def test_event_without_sink_is_noop(self):
        tracer = Tracer()  # no sink
        tracer.event("fm.read", path="/x")  # must not raise

    def test_write_metrics_embeds_snapshot(self):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()
        registry.counter("m_total").inc(3)
        sink = MemorySink()
        tracer = Tracer(sink)
        tracer.write_metrics(registry)
        [record] = sink.records
        assert record["type"] == "metrics"
        assert record["snapshot"]["m_total"]["series"][0]["value"] == 3

    def test_jsonlines_sink_roundtrip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        tracer = Tracer(JsonLinesSink(path))
        with tracer.span("task", task="t1"):
            tracer.event("fm.open", path="/f")
        tracer.sink.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert {r["type"] for r in lines} == {"span", "event"}

    def test_configure_swaps_sink(self):
        tracer = Tracer()
        first = MemorySink()
        assert tracer.configure(first) is None
        assert tracer.configure(None) is first

    def test_sink_concurrent_writes(self, tmp_path):
        path = tmp_path / "concurrent.jsonl"
        tracer = Tracer(JsonLinesSink(path))

        def worker(i):
            for _ in range(50):
                with tracer.span("w", idx=i):
                    pass

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        tracer.sink.close()
        lines = path.read_text().splitlines()
        assert len(lines) == 200
        for line in lines:
            json.loads(line)  # every line intact despite interleaving
