"""Benchmark-suite configuration.

Every benchmark both *times* its experiment (pytest-benchmark) and
*prints* the regenerated table so the output can be compared with the
paper directly (run with ``-s`` to see the tables inline; they are also
asserted via the shape checks).

``--obs`` additionally embeds a :mod:`repro.obs` metrics snapshot into
each BENCH_*.json a benchmark writes, so a run's IO counters travel
with its timings.
"""

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--obs",
        action="store_true",
        default=False,
        help="embed repro.obs metrics snapshots into BENCH_*.json outputs",
    )


@pytest.fixture()
def obs_snapshot(request):
    """None, or a zero-arg callable returning the current obs snapshot.

    Benchmarks call it right before writing their BENCH_*.json and embed
    the result under a ``"metrics"`` key when --obs was given.
    """
    if not request.config.getoption("--obs"):
        return None
    from repro import obs

    return obs.snapshot


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment through pytest-benchmark with minimal repeats.

    The simulations are deterministic, so one timed round is enough and
    keeps the whole suite fast.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture()
def once(benchmark):
    def _run(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return _run
