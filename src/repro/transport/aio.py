"""Async-native RPC engine behind the sync transport facade.

One process-wide background event loop (:class:`_LoopEngine`) hosts
every :class:`AsyncRpcServer` in the process.  A connection costs a
reader/writer pair on the loop instead of a dedicated thread, which is
what lets a single Grid Buffer node multiplex thousands of concurrent
readers.  Handlers come in three kinds:

* ``register(op, fn)`` — plain sync handler, dispatched to a shared
  thread pool so blocking handlers (file IO, condition waits) cannot
  stall the loop.  This is the drop-in path for existing services.
* ``register(op, fn, inline=True)`` — sync handler cheap enough to run
  directly on the loop (no locks, no IO).
* ``register_async(op, coro_fn)`` — native coroutine handler; blocking
  waits become awaits and consume no thread at all (the Grid Buffer
  read/write ops use this).

Framing is negotiated per the scheme in :mod:`repro.transport.wire`:
the server answers whatever codec each frame arrives in (sniffed off
the first byte) and advertises binary support by echoing the client's
``_wire`` probe key, so old JSON-only peers interoperate unchanged.

:class:`AsyncRpcClient` is the asyncio twin of the sync pooled client
— same negotiation, retry gating and fault hooks, but one coroutine
per in-flight call instead of one blocked thread (the DIRACX
sync/aio dual-client pattern).

This module is imported by :mod:`repro.transport.tcp` (which re-binds
``AsyncRpcServer`` as the public ``RpcServer``); import the package
via ``repro.transport`` so the two halves initialise in order.
"""

from __future__ import annotations

import asyncio
import json
import os
import random
import socket
import threading
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import Any, Callable, Deque, Dict, Iterable, Optional, Set, Tuple

from .. import faults, ioutil, obs
from ..obs import ops as obs_ops
from .tcp import (
    _CLIENT_CALLS,
    _CLIENT_ERRORS,
    _CLIENT_RETRIES,
    _SERVER_REQUESTS,
    DEFAULT_RPC_TIMEOUT,
    IDEMPOTENT_OPS,
    MAX_HEADER,
    FrameError,
    RetryPolicy,
    RpcError,
)
from .wire import (
    CRC_TRAILER,
    CRC_TRAILER_SIZE,
    FLAG_CRC,
    KNOWN_FLAGS,
    MAGIC,
    PREAMBLE,
    PREAMBLE_SIZE,
    TRACE_KEY,
    WIRE_KEY,
    WIRE_VERSION,
    IntegrityError,
    WireError,
    advert_has_crc,
    build_binary_frame,
    build_json_frame,
    decode_binary_header,
    wire_advert,
)

__all__ = ["AsyncRpcServer", "AsyncRpcClient", "LoopSignal", "get_engine"]

#: Thread-pool width for sync handlers hosted by the async engine.
#: Threads are created on demand, so an idle server costs none.
_EXECUTOR_WORKERS = max(8, int(os.environ.get("REPRO_RPC_EXECUTOR", "64")))

#: Per-connection cap on concurrently dispatched (reply-pending)
#: requests; beyond it the server stops reading that connection.
_MAX_PIPELINE = 1024

#: Loop-lag watchdog sampling interval (seconds); <= 0 disables it.
_WATCHDOG_INTERVAL = float(os.environ.get("REPRO_LOOP_WATCHDOG_S", "0.1"))

#: Lag past which a sample counts as a stall (the loop was unable to
#: run a due timer for this long — some callback blocked it).
_STALL_THRESHOLD = float(os.environ.get("REPRO_LOOP_STALL_S", "0.25"))

_PIPELINE_DEPTH = obs.histogram(
    "rpc_server_pipeline_depth",
    "In-flight requests on a connection when another is dispatched",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024),
)
_PUMP_QUEUE = obs.gauge(
    "rpc_reply_pump_queue",
    "Replies (ready or pending) queued behind a connection's reply pump",
)
_COALESCE_BATCH = obs.histogram(
    "rpc_frame_coalesce_batch",
    "Frames merged into one socket write by the per-connection coalescer",
    buckets=(1, 2, 4, 8, 16, 32, 64, 128, 256),
)
_LOOP_LAG = obs.gauge(
    "rpc_loop_lag_seconds",
    "Sampled callback-scheduling latency of the shared engine loop",
)
_LOOP_STALLS = obs.counter(
    "loop_stall_total",
    "Watchdog-detected event-loop stalls, labelled with the suspected op",
    labelnames=("op",),
)


#: Hot-path metric children, bound once per label set.  ``labels()``
#: does a guarded dict build per call, which shows up at small-op rates.
_CALLS_BY_OP: Dict[str, Any] = {}
_REQUESTS_BY_KEY: Dict[Tuple[str, str], Any] = {}


def _count_call(op: str) -> None:
    child = _CALLS_BY_OP.get(op)
    if child is None:
        child = _CALLS_BY_OP[op] = _CLIENT_CALLS.labels(op=op)
    child.inc()


def _count_request(op: str, status: str) -> None:
    key = (op, status)
    child = _REQUESTS_BY_KEY.get(key)
    if child is None:
        child = _REQUESTS_BY_KEY[key] = _SERVER_REQUESTS.labels(op=op, status=status)
    child.inc()


def _set_nodelay(writer: asyncio.StreamWriter) -> None:
    """Disable Nagle on a stream connection (matches the sync transport).

    RPC frames are small and latency-bound; without this each reply can
    sit behind the peer's delayed ACK for ~40 ms.
    """
    sock = writer.get_extra_info("socket")
    if sock is not None:
        try:
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:  # fault-ok: non-TCP or dying socket; Nagle is a perf knob
            pass


class _LoopEngine:
    """Process-wide event loop on a daemon thread, plus handler executor.

    All async servers and all sync-facade clients share one loop; the
    loop only ever runs scheduling and memory copies, so sharing it is
    cheaper than a loop per server and keeps cross-server wakeups on
    one core.
    """

    _instance: Optional["_LoopEngine"] = None
    _lock = threading.Lock()

    def __init__(self) -> None:
        self.loop = asyncio.new_event_loop()
        self.executor = ThreadPoolExecutor(
            max_workers=_EXECUTOR_WORKERS, thread_name_prefix="rpc-handler"
        )
        # Watchdog state (touched only on the loop thread): when the
        # sampled tick arrives later than scheduled, some callback held
        # the loop — the longest on-loop sync handler since the last
        # tick is the prime suspect and gets the blame label.
        self._tick_due = 0.0
        self._blame_op: Optional[str] = None
        self._blame_dur = 0.0
        self._thread = threading.Thread(
            target=self._run, name="rpc-event-loop", daemon=True
        )
        self._thread.start()
        if _WATCHDOG_INTERVAL > 0:
            self.loop.call_soon_threadsafe(self._arm_watchdog)

    def _run(self) -> None:
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    # -- loop-lag watchdog ----------------------------------------------------
    def _arm_watchdog(self) -> None:
        self._tick_due = self.loop.time() + _WATCHDOG_INTERVAL
        self.loop.call_later(_WATCHDOG_INTERVAL, self._watchdog_tick)

    def _watchdog_tick(self) -> None:
        lag = max(0.0, self.loop.time() - self._tick_due)
        _LOOP_LAG.set(lag)
        if lag >= _STALL_THRESHOLD:
            _LOOP_STALLS.labels(op=self._blame_op or "unknown").inc()
        self._blame_op = None
        self._blame_dur = 0.0
        self._arm_watchdog()

    def note_sync(self, op: str, duration: float) -> None:
        """Record an on-loop sync handler execution (loop thread only).

        Inline handlers are the only user code that can block the loop
        directly; the longest one since the last watchdog tick is
        blamed if that tick arrives late.  Runs before any overdue tick
        because the coroutine step that ran the handler completes
        (including this call) before the loop services timers.
        """
        if duration > self._blame_dur:
            self._blame_dur = duration
            self._blame_op = op

    @classmethod
    def get(cls) -> "_LoopEngine":
        with cls._lock:
            if cls._instance is None or not cls._instance._thread.is_alive():
                cls._instance = cls()
            return cls._instance

    def submit(self, coro):
        """Schedule a coroutine from sync code; returns a concurrent Future."""
        return asyncio.run_coroutine_threadsafe(coro, self.loop)


def get_engine() -> _LoopEngine:
    return _LoopEngine.get()


async def read_frame_async(
    reader: asyncio.StreamReader,
) -> Tuple[Dict[str, Any], bytes, str]:
    """Read one frame in either framing; returns (header, payload, codec).

    The codec is sniffed off the first byte: ``0xB1`` marks a binary
    frame, anything else is the high byte of a legacy JSON header
    length (always 0x00/0x01 because of ``MAX_HEADER``).  A binary
    frame carrying ``FLAG_CRC`` has its trailer consumed and verified
    here and reports codec ``"binary+crc"``, so repliers can echo the
    sender's protection level frame-for-frame.
    """
    try:
        b0 = await reader.readexactly(1)
        if b0[0] == MAGIC:
            raw = b0 + await reader.readexactly(PREAMBLE_SIZE - 1)
            _magic, version, flags, opid, flen, plen = PREAMBLE.unpack(raw)
            if version != WIRE_VERSION:
                raise FrameError(f"unsupported wire version {version}")
            if flags & ~KNOWN_FLAGS:
                raise FrameError(f"unsupported wire flags 0x{flags:02x}")
            fields = await reader.readexactly(flen) if flen else b""
            payload = await reader.readexactly(plen) if plen else b""
            want_crc = -1
            if flags & FLAG_CRC:
                want_crc = CRC_TRAILER.unpack(await reader.readexactly(CRC_TRAILER_SIZE))[0]
            try:
                header = decode_binary_header(opid, fields, plen)
            except WireError as exc:
                raise FrameError(f"bad binary header: {exc}") from exc
            if want_crc < 0:
                return header, payload, "binary"
            got = ioutil.crc32(payload)
            if got != want_crc:
                raise IntegrityError(
                    f"payload CRC mismatch on {header.get('op', '?')!r} frame: "
                    f"got {got:#010x} want {want_crc:#010x} ({plen} bytes)"
                )
            return header, payload, "binary+crc"
        raw = b0 + await reader.readexactly(3)
        hlen = int.from_bytes(raw, "big")
        if hlen > MAX_HEADER:
            raise FrameError(f"header length {hlen} exceeds maximum")
        try:
            header = json.loads((await reader.readexactly(hlen)).decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise FrameError(f"bad header: {exc}") from exc
        if not isinstance(header, dict) or "payload_len" not in header:
            raise FrameError("header missing payload_len")
        payload = await reader.readexactly(int(header["payload_len"]))
        return header, payload, "json"
    except asyncio.IncompleteReadError as exc:
        raise FrameError("connection closed mid-frame") from exc


class LoopSignal:
    """Thread-safe change broadcast onto the engine loop.

    Mutating threads call :meth:`notify` (cheap, coalesced: one
    ``call_soon_threadsafe`` per burst); loop coroutines ``await
    wait(timeout)`` to park until the next notification.  This is the
    bridge the GNS watch op uses to turn a commit on a worker thread
    into a wakeup for every long-poll parked on the process-wide loop.

    The underlying ``asyncio.Event`` is level-triggered and shared by
    all waiters: waiters must ``clear()`` *before* re-checking the
    state they are watching, so a notification landing between the
    check and the wait is never lost.
    """

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop
        self._event = asyncio.Event()
        self._lock = threading.Lock()
        self._scheduled = False

    def notify(self) -> None:
        """Wake all current waiters; callable from any thread."""
        with self._lock:
            if self._scheduled:
                return
            self._scheduled = True
        try:
            self._loop.call_soon_threadsafe(self._fire)
        except RuntimeError:  # fault-ok: loop shut down; nothing to wake
            with self._lock:
                self._scheduled = False

    def _fire(self) -> None:
        with self._lock:
            self._scheduled = False
        self._event.set()

    def clear(self) -> None:
        self._event.clear()

    async def wait(self, timeout: float) -> bool:
        """Park until the next notify or ``timeout``; True if notified."""
        if timeout <= 0:
            return self._event.is_set()
        try:
            await asyncio.wait_for(self._event.wait(), timeout)
            return True
        except asyncio.TimeoutError:  # fault-ok: timeout is the False return
            return False


class _FrameQueue:
    """Per-connection frame coalescer: one ``send`` per loop pass.

    ``transport.write`` attempts an immediate ``send(2)`` whenever its
    buffer is empty, so naively writing each frame costs one syscall
    per frame.  Pipelined traffic queues many frames within a single
    event-loop pass; buffering them here and flushing from a
    ``call_soon`` callback (which the loop runs after the ready tasks)
    batches them into one write.  Frames stay strictly ordered because
    every write on the connection goes through the queue.
    """

    __slots__ = ("writer", "buf", "scheduled", "frames")

    def __init__(self, writer: asyncio.StreamWriter):
        self.writer = writer
        self.buf = bytearray()
        self.scheduled = False
        self.frames = 0

    def push_frame(
        self,
        scratch: bytearray,
        header: Dict[str, Any],
        payload: bytes,
        codec: str,
        corrupter=None,
    ) -> None:
        """Queue one frame; ``corrupter`` (chaos only) flips payload bits
        *after* the CRC trailer is computed, modelling wire corruption."""
        if codec == "json":
            build_json_frame(scratch, header, len(payload))
            trailer = b""
        else:
            crc_on = codec == "binary+crc"
            build_binary_frame(scratch, header, len(payload), FLAG_CRC if crc_on else 0)
            trailer = CRC_TRAILER.pack(ioutil.crc32(payload)) if crc_on else b""
        if corrupter is not None and payload:
            payload = corrupter.corrupt_bytes(bytes(payload))
        self.buf += scratch
        if payload:
            self.buf += payload
        if trailer:
            self.buf += trailer
        self.frames += 1
        if not self.scheduled:
            self.scheduled = True
            asyncio.get_running_loop().call_soon(self.flush)

    def flush(self) -> None:
        self.scheduled = False
        if not self.buf:
            return
        _COALESCE_BATCH.observe(self.frames)
        self.frames = 0
        transport = self.writer.transport
        if transport is None or transport.is_closing():
            self.buf.clear()  # fault-ok: peer gone; reader side surfaces the error
            return
        self.writer.write(bytes(self.buf))
        self.buf.clear()


Handler = Callable[[Dict[str, Any], bytes], Tuple[Dict[str, Any], bytes]]


class AsyncRpcServer:
    """Event-loop RPC server; drop-in replacement for the threaded one.

    Public surface matches the legacy threaded server exactly —
    ``register``/``start``/``stop``/``disconnect_all``/``address``/
    ``peer_name``/context manager — plus ``register_async`` for native
    coroutine handlers.  Semantics preserved from the threaded server:

    * strict request/reply per connection (frames on one connection are
      served serially, so a pooled client's in-flight depth still equals
      its connection count);
    * ``stop`` closes only the listener — established connections keep
      being served (``disconnect_all`` kills them, as before);
    * handler exceptions become error replies, never dead connections;
    * the fault injector's ``rpc.server`` hook fires per request with
      identical drop/close/error verdict handling.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        simulated_latency: float = 0.0,
        max_inflight: Optional[int] = None,
        inflight_ops: Optional[Iterable[str]] = None,
    ):
        self._handlers: Dict[str, Tuple[str, Handler]] = {}
        self.simulated_latency = max(0.0, simulated_latency)
        # Optional server-wide concurrency cap: with N requests already
        # executing, the N+1th parks on the semaphore.  Benchmarks use
        # it (with simulated_latency) to model a *constrained* origin
        # link whose service time scales with total offered load —
        # per-request latency alone cannot, because requests sleep
        # concurrently.  ``inflight_ops`` narrows the cap to the listed
        # ops (the bulk-transfer data plane); control messages then
        # still pay the latency but never occupy a transfer slot.
        self._sem = asyncio.Semaphore(max_inflight) if max_inflight else None
        self._inflight_ops = frozenset(inflight_ops) if inflight_ops is not None else None
        self._engine = get_engine()
        obs_ops.install(self)
        self._writers: Set[asyncio.StreamWriter] = set()
        self._writers_lock = threading.Lock()
        # Bind in the constructor (not start) so .address works before
        # start() and bind errors surface where the caller expects them.
        sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        sock.bind((host, port))
        sock.listen(128)
        self._sock = sock
        addr = sock.getsockname()
        self._address = (addr[0], addr[1])
        #: Label used by the fault injector to match ``peer=`` globs.
        self.peer_name = f"{addr[0]}:{addr[1]}"
        self._aserver: Optional[asyncio.base_events.Server] = None

    @property
    def address(self) -> Tuple[str, int]:
        return self._address

    def register(self, op: str, handler: Handler, inline: bool = False) -> None:
        self._handlers[op] = ("inline" if inline else "thread", handler)

    def register_async(self, op: str, handler: Callable[..., Any]) -> None:
        self._handlers[op] = ("async", handler)

    def start(self) -> "AsyncRpcServer":
        async def _bind():
            return await asyncio.start_server(self._serve_conn, sock=self._sock)

        self._aserver = self._engine.submit(_bind()).result(timeout=10)
        return self

    def stop(self) -> None:
        """Close the listener; established connections keep serving.

        Blocks until the listening socket is really closed so a
        restart can rebind the same port immediately.  (Deliberately
        not ``wait_closed()`` — on newer Pythons that waits for every
        connection too, which is ``disconnect_all``'s job, not ours.)
        """
        server, self._aserver = self._aserver, None
        if server is None:
            self._sock.close()
            return
        done = threading.Event()

        def _close() -> None:
            server.close()
            done.set()

        self._engine.loop.call_soon_threadsafe(_close)
        done.wait(timeout=5)

    def disconnect_all(self) -> None:
        """Forcibly drop every established connection (crash simulation)."""
        with self._writers_lock:
            writers = list(self._writers)
        if not writers:
            return
        done = threading.Event()

        def _kill() -> None:
            for w in writers:
                transport = w.transport
                if transport is not None:
                    transport.abort()
            done.set()

        self._engine.loop.call_soon_threadsafe(_kill)
        done.wait(timeout=5)

    def __enter__(self) -> "AsyncRpcServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    async def _run_one(
        self,
        op: str,
        entry: Optional[Tuple[str, Callable]],
        header: Dict[str, Any],
        payload: bytes,
        codec: str,
        probe: bool,
        rctx: Optional[obs.SpanContext] = None,
        corrupter=None,
    ) -> Tuple[Dict[str, Any], bytes, str, Any]:
        """Execute one handler and package its reply for the reply pump."""
        if self._sem is not None and (
            self._inflight_ops is None or op in self._inflight_ops
        ):
            async with self._sem:
                return await self._run_one_admitted(
                    op, entry, header, payload, codec, probe, rctx, corrupter
                )
        return await self._run_one_admitted(
            op, entry, header, payload, codec, probe, rctx, corrupter
        )

    async def _run_one_admitted(
        self,
        op: str,
        entry: Optional[Tuple[str, Callable]],
        header: Dict[str, Any],
        payload: bytes,
        codec: str,
        probe: bool,
        rctx: Optional[obs.SpanContext] = None,
        corrupter=None,
    ) -> Tuple[Dict[str, Any], bytes, str, Any]:
        if self.simulated_latency:
            await asyncio.sleep(2.0 * self.simulated_latency)
        tracer = obs.get_tracer()
        # Stack-free span: this coroutine interleaves with others on the
        # loop thread, so the TLS span stack cannot carry it.  Sync
        # handlers get the context re-attached on *their* thread below,
        # so spans they open still parent under the remote caller.
        span = (
            tracer.start_span("rpc.server", parent=rctx, op=op, peer=self.peer_name)
            if tracer.sink is not None
            else None
        )
        ctx = span.context if span is not None else None
        try:
            if entry is None:
                raise RpcError("unknown-op", f"no handler for {op!r}")
            kind, fn = entry
            if span is not None:
                span.set(kind=kind)
            if kind == "async":
                reply, data = await fn(header, payload)
            elif kind == "inline":
                t0 = self._engine.loop.time()
                if ctx is not None:
                    with tracer.attach(ctx):
                        reply, data = fn(header, payload)
                else:
                    reply, data = fn(header, payload)
                self._engine.note_sync(op, self._engine.loop.time() - t0)
            else:
                if ctx is not None:
                    def _traced(fn=fn, header=header, payload=payload, ctx=ctx):
                        with tracer.attach(ctx):
                            return fn(header, payload)

                    reply, data = await self._engine.loop.run_in_executor(
                        self._engine.executor, _traced
                    )
                else:
                    reply, data = await self._engine.loop.run_in_executor(
                        self._engine.executor, fn, header, payload
                    )
            reply = dict(reply)
            reply.setdefault("ok", True)
            _count_request(op, "ok")
        except RpcError as exc:
            reply, data = {"ok": False, "error": exc.kind, "message": exc.message}, b""
            _count_request(op, "error")
        except Exception as exc:  # noqa: BLE001 - reply with error
            reply, data = {"ok": False, "error": type(exc).__name__, "message": str(exc)}, b""
            _count_request(op, "error")
        if span is not None:
            tracer.finish_span(
                span, error=None if reply.get("ok") else str(reply.get("error"))
            )
        if probe:
            reply[WIRE_KEY] = wire_advert()
        return reply, data, codec, corrupter

    async def _serve_conn(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        with self._writers_lock:
            self._writers.add(writer)
        _set_nodelay(writer)
        scratch = bytearray(256)
        outq = _FrameQueue(writer)
        loop = self._engine.loop
        # Handlers on one connection run concurrently (a pipelined
        # client may have a write queued behind a parked read — serial
        # dispatch would deadlock it, and serial simulated latency would
        # defeat pipelining entirely).  The framing carries no request
        # ids, so replies must still leave in request order: ``order``
        # holds one entry per in-flight request — a handler Task, or a
        # ready ``(reply, data, codec)`` tuple — and the pump drains it
        # strictly FIFO.
        order: Deque[Any] = deque()
        wake = asyncio.Event()
        pump: Optional["asyncio.Task"] = None

        async def _pump() -> None:
            pump_scratch = bytearray(256)
            while True:
                while not order:
                    _PUMP_QUEUE.set(0)
                    wake.clear()
                    await wake.wait()
                _PUMP_QUEUE.set(len(order))
                item = order[0]
                reply, data, codec, corrupter = item if isinstance(item, tuple) else await item
                order.popleft()
                try:
                    outq.push_frame(pump_scratch, reply, data, codec, corrupter)
                    await writer.drain()
                except (OSError, ConnectionError):  # fault-ok: peer hung up mid-reply
                    return

        def _enqueue(item: Any) -> None:
            nonlocal pump
            order.append(item)
            if pump is None:
                pump = loop.create_task(_pump())
            wake.set()

        try:
            while True:
                try:
                    header, payload, codec = await read_frame_async(reader)
                except IntegrityError:
                    # Corrupted request frame.  The stream itself is back
                    # in sync (the full frame was consumed), but the
                    # request cannot be trusted — count the detection and
                    # drop the connection so the client redials and
                    # re-sends under its idempotency gate.
                    ioutil.count_integrity_error("rpc.server", "close")
                    return
                except (FrameError, OSError):  # fault-ok: peer hung up; normal teardown
                    return
                op = header.get("op", "")
                # The trace header never reaches handlers: popped here
                # whether or not tracing is active, so handler code sees
                # the same header dict either way.
                rctx = obs.context_from_wire(header.pop(TRACE_KEY, None))
                # A JSON request carrying the probe key is asking
                # whether we speak binary; every reply to it (success,
                # error, injected fault) must echo the advertisement or
                # the client mis-pins JSON.
                probe = codec == "json" and WIRE_KEY in header
                corrupter = None
                injector = faults.ACTIVE
                if injector is not None:
                    try:
                        # fire_async, not fire: a sync sleep for a delay
                        # rule here would stall every connection on the
                        # shared loop (the stall watchdog flags it).
                        verdict = await injector.fire_async("rpc.server", op, self.peer_name)
                    except faults.InjectedFault as exc:
                        reply = {"ok": False, "error": "injected-fault", "message": str(exc)}
                        if probe:
                            reply[WIRE_KEY] = wire_advert()
                        if order:
                            _enqueue((reply, b"", codec, None))
                            continue
                        try:
                            outq.push_frame(scratch, reply, b"", codec)
                            await writer.drain()
                        except (OSError, ConnectionError):  # fault-ok: peer already gone
                            return
                        continue
                    if verdict == "corrupt":
                        # Serve the request but flip bits in the reply
                        # payload after checksumming (the pump applies it):
                        # the connection stays healthy, the data is wrong.
                        corrupter = injector
                    elif verdict is not None:
                        # "drop": swallow the request and close (FIN);
                        # "close": reset so the client's pending recv
                        # fails immediately (matches the threaded
                        # server's SHUT_RDWR).
                        if verdict == "close" and writer.transport is not None:
                            writer.transport.abort()
                        return
                entry = self._handlers.get(op)
                if (
                    not order
                    and not self.simulated_latency
                    and self._sem is None
                    and entry is not None
                    and entry[0] == "inline"
                ):
                    # Serial fast path: nothing in flight and the handler
                    # cannot block, so skip the task machinery — this is
                    # the common case for small-op request/reply traffic.
                    tracer = obs.get_tracer()
                    span = (
                        tracer.start_span(
                            "rpc.server", parent=rctx, op=op,
                            peer=self.peer_name, kind="inline",
                        )
                        if tracer.sink is not None
                        else None
                    )
                    t0 = loop.time()
                    try:
                        if span is not None:
                            with tracer.attach(span.context):
                                reply, data = entry[1](header, payload)
                        else:
                            reply, data = entry[1](header, payload)
                        reply = dict(reply)
                        reply.setdefault("ok", True)
                        _count_request(op, "ok")
                    except RpcError as exc:
                        reply, data = {"ok": False, "error": exc.kind, "message": exc.message}, b""
                        _count_request(op, "error")
                    except Exception as exc:  # noqa: BLE001 - reply with error
                        reply, data = (
                            {"ok": False, "error": type(exc).__name__, "message": str(exc)},
                            b"",
                        )
                        _count_request(op, "error")
                    self._engine.note_sync(op, loop.time() - t0)
                    if span is not None:
                        tracer.finish_span(
                            span, error=None if reply.get("ok") else str(reply.get("error"))
                        )
                    if probe:
                        reply[WIRE_KEY] = wire_advert()
                    try:
                        outq.push_frame(scratch, reply, data, codec, corrupter)
                        await writer.drain()
                    except (OSError, ConnectionError):  # fault-ok: peer hung up mid-reply
                        return
                    continue
                if len(order) >= _MAX_PIPELINE:
                    # Backpressure: stop reading until the oldest handler
                    # retires instead of buffering replies without bound.
                    head = order[0]
                    if isinstance(head, tuple):
                        await asyncio.sleep(0)  # pump drains it next pass
                    else:
                        await asyncio.wait({head})
                _PIPELINE_DEPTH.observe(len(order) + 1)
                _enqueue(
                    loop.create_task(
                        self._run_one(op, entry, header, payload, codec, probe, rctx, corrupter)
                    )
                )
        finally:
            with self._writers_lock:
                self._writers.discard(writer)
            if pump is not None:
                pump.cancel()
            for item in order:
                if not isinstance(item, tuple):
                    item.cancel()
            try:
                writer.close()
            except Exception:  # noqa: BLE001  # fault-ok: best-effort close on teardown
                pass


class _Conn:
    """One client connection generation: stream pair + in-flight queue.

    Bundled so a reconnect swaps the whole generation atomically — the
    old reader task fails its own pending queue and can never touch the
    replacement connection's state.
    """

    __slots__ = ("reader", "writer", "outq", "pending", "task", "watchdog")

    def __init__(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter):
        self.reader = reader
        self.writer = writer
        self.outq = _FrameQueue(writer)
        self.pending: Deque[Tuple[bool, "asyncio.Future", float]] = deque()
        self.task: Optional["asyncio.Task"] = None
        self.watchdog: Optional["asyncio.TimerHandle"] = None


class AsyncRpcClient:
    """Asyncio-native RPC client: one connection, serial request/reply.

    The aio twin of the sync pooled ``RpcClient`` — identical codec
    negotiation, retry/idempotency gating and ``rpc.client`` fault
    hook, but callers hold a coroutine instead of a thread while a
    call is in flight.

    Unlike the sync client (one in-flight call per pooled connection),
    concurrent callers sharing one instance *pipeline*: the lock covers
    only the frame write, requests stream back-to-back on a single
    connection, and a per-connection reader task matches the strictly
    FIFO replies to caller futures.  That multiplexing — many in-flight
    ops, one socket, no thread or connection per op — is where the
    async engine's small-op throughput comes from.

    Must be used from a running event loop (any loop — not tied to the
    engine's).
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: Optional[float] = None,
        wire: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        crc: Optional[bool] = None,
    ):
        self._addr = (host, port)
        self._peer = f"{host}:{port}"
        self._timeout = DEFAULT_RPC_TIMEOUT if timeout is None else timeout
        self._retry = retry if retry is not None else RetryPolicy()
        self._rng = random.Random()
        forced = wire if wire is not None else (os.environ.get("REPRO_WIRE") or None)
        if forced not in (None, "json", "binary"):
            raise ValueError(f"wire must be 'json' or 'binary', not {forced!r}")
        self._forced = forced
        if crc is None:
            crc = os.environ.get("REPRO_WIRE_CRC", "1") != "0"
        self._want_crc = bool(crc)
        self._codec: Optional[str] = forced  # None until negotiated
        self._conn: Optional[_Conn] = None
        self._scratch = bytearray(256)
        self._lock = asyncio.Lock()  # connection setup + frame-write order
        self._closed = False

    async def call(
        self,
        op: str,
        header: Optional[Dict[str, Any]] = None,
        payload: bytes = b"",
        retryable: Optional[bool] = None,
    ) -> Tuple[Dict[str, Any], bytes]:
        msg = dict(header or {})
        msg["op"] = op
        _count_call(op)
        tracer = obs.get_tracer()
        span = None
        if tracer.sink is not None:
            # Stack-free: concurrent callers pipeline on one loop
            # thread, so the TLS stack cannot hold per-call spans.
            span = tracer.start_span(
                "rpc.client", parent=tracer.current_context(), op=op, peer=self._peer
            )
            msg[TRACE_KEY] = span.context.to_wire()
        try:
            reply, data = await self._call_with_retry(op, msg, payload, retryable)
        except BaseException as exc:
            if span is not None:
                tracer.finish_span(span, error=f"{type(exc).__name__}: {exc}")
            raise
        if span is not None:
            tracer.finish_span(span)
        return reply, data

    async def _call_with_retry(
        self,
        op: str,
        msg: Dict[str, Any],
        payload: bytes,
        retryable: Optional[bool],
    ) -> Tuple[Dict[str, Any], bytes]:
        if retryable is None:
            retryable = op in IDEMPOTENT_OPS
        attempts = 1 + (self._retry.retries if retryable else 0)
        attempt = 0
        if self._closed:
            raise ConnectionError(f"client to {self._peer} is closed")
        while True:
            attempt += 1
            try:
                return await self._dispatch(op, msg, payload)
            except (OSError, FrameError, asyncio.TimeoutError) as exc:
                self._teardown()
                if isinstance(exc, IntegrityError):
                    # Healthy peer, corrupted frame: keep the pinned
                    # codec, count the detection, re-request.
                    ioutil.count_integrity_error("rpc.client", "retry")
                elif self._codec not in (None, "json") and self._forced is None:
                    self._codec = None  # re-probe after a connection loss
                _CLIENT_ERRORS.labels(op=op, kind=type(exc).__name__).inc()
                if attempt >= attempts:
                    if isinstance(exc, asyncio.TimeoutError):
                        raise TimeoutError(
                            f"RPC {op} to {self._peer} timed out"
                        ) from exc
                    raise
                _CLIENT_RETRIES.labels(op=op).inc()
                await asyncio.sleep(self._retry.backoff(attempt, self._rng))

    async def _dispatch(
        self, op: str, msg: Dict[str, Any], payload: bytes
    ) -> Tuple[Dict[str, Any], bytes]:
        """Queue one request and await its reply.

        The lock covers connect + frame write only, so concurrent
        callers pipeline on one connection (replies are FIFO per the
        framing contract).  A negotiating call additionally holds the
        lock until its probe reply pins the codec — every frame after
        it is framed in the negotiated codec.
        """
        await self._lock.acquire()
        probe = False
        try:
            if self._closed:
                raise ConnectionError(f"client to {self._peer} is closed")
            loop = asyncio.get_running_loop()
            if self._conn is None:
                if self._timeout:
                    async with asyncio.timeout(self._timeout):
                        await self._connect()
                else:
                    await self._connect()
            conn = self._conn
            codec = self._codec
            probe = codec is None
            send_msg = msg
            if probe:
                codec = "json"
                send_msg = dict(msg)
                send_msg[WIRE_KEY] = WIRE_VERSION
            corrupter = None
            injector = faults.ACTIVE
            if injector is not None:
                # fire_async: this coroutine runs on the caller's loop, so
                # a sync sleep for a delay rule would stall every
                # pipelined call sharing it.
                verdict = await injector.fire_async("rpc.client", op, self._peer)
                if verdict == "corrupt":
                    # Flip bits in the outgoing request payload after
                    # checksumming (applied in push_frame): only the
                    # server's CRC check can notice.
                    corrupter = injector
                elif verdict is not None and conn.writer.transport is not None:
                    # Kill the connection under the call so the real
                    # send/recv path fails organically (same as sync client).
                    conn.writer.transport.abort()
            fut = loop.create_future()
            deadline = (loop.time() + self._timeout) if self._timeout else 0.0
            conn.pending.append((probe, fut, deadline))
            if self._timeout and conn.watchdog is None:
                # One timer per connection, not per call: replies are
                # FIFO, so the earliest un-met deadline is always the
                # queue head — arming a timer per call would just churn
                # the loop's timer heap.
                conn.watchdog = loop.call_later(
                    self._timeout, self._watchdog_fire, conn
                )
            conn.outq.push_frame(self._scratch, send_msg, payload, codec, corrupter)
            await conn.writer.drain()
        finally:
            if not probe:
                self._lock.release()
        try:
            reply, data = await fut
        finally:
            if probe:
                self._lock.release()
        if not reply.get("ok", False):
            kind = reply.get("error", "remote-error")
            _CLIENT_ERRORS.labels(op=op, kind=kind).inc()
            raise RpcError(kind, reply.get("message", ""))
        return reply, data

    async def _connect(self) -> None:
        reader, writer = await asyncio.open_connection(*self._addr)
        _set_nodelay(writer)
        conn = _Conn(reader, writer)
        conn.task = asyncio.get_running_loop().create_task(self._recv_loop(conn))
        self._conn = conn

    def _watchdog_fire(self, conn: "_Conn") -> None:
        """Fail the connection when the oldest in-flight call is overdue.

        FIFO replies mean a stuck head blocks everything behind it, so
        timing out the whole connection (not just the head call) is the
        correct granularity — exactly what the sync client's per-socket
        timeout does.
        """
        conn.watchdog = None
        loop = asyncio.get_running_loop()
        now = loop.time()
        for probe_, fut, deadline in conn.pending:
            if fut.done():
                continue  # abandoned by a cancelled caller; recv will skip it
            if deadline <= now:
                fut.set_exception(
                    asyncio.TimeoutError(f"RPC to {self._peer} timed out")
                )
                if conn is self._conn:
                    self._teardown()
                else:
                    conn.writer.close()
            else:
                conn.watchdog = loop.call_later(
                    deadline - now, self._watchdog_fire, conn
                )
            return

    async def _recv_loop(self, conn: "_Conn") -> None:
        """Single reader per connection: match FIFO replies to futures.

        On any connection error every in-flight call fails with it; the
        per-call retry loops decide what to do from there.
        """
        exc: Optional[BaseException] = None
        try:
            while True:
                reply, data, _ = await read_frame_async(conn.reader)
                probe, fut, _deadline = conn.pending.popleft()
                if probe and self._forced is None:
                    advert = reply.get(WIRE_KEY)
                    if advert is None:
                        self._codec = "json"
                    elif self._want_crc and advert_has_crc(advert):
                        self._codec = "binary+crc"
                    else:
                        self._codec = "binary"
                reply.pop(WIRE_KEY, None)
                if not fut.done():  # timed-out callers abandon cancelled futures
                    fut.set_result((reply, data))
        except (OSError, FrameError, IndexError) as err:  # fault-ok: conn died; callers retry
            exc = err
        except asyncio.CancelledError:  # teardown cancelled us mid-read
            exc = None
        finally:
            failure = exc if exc is not None else ConnectionError(
                f"connection to {self._peer} closed"
            )
            while conn.pending:
                _, fut, _deadline = conn.pending.popleft()
                if not fut.done():
                    fut.set_exception(failure)

    def _teardown(self) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            if conn.task is not None:
                conn.task.cancel()
            if conn.watchdog is not None:
                conn.watchdog.cancel()
                conn.watchdog = None
            try:
                conn.writer.close()
            except Exception:  # noqa: BLE001  # fault-ok: best-effort close
                pass

    async def close(self) -> None:
        async with self._lock:
            self._closed = True
            self._teardown()

    async def __aenter__(self) -> "AsyncRpcClient":
        return self

    async def __aexit__(self, *exc) -> None:
        await self.close()
