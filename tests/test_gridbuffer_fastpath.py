"""Fast-path tests: vectored ops, wire compat, shared cache, shutdown.

Covers the PR 3 Grid Buffer fast path end to end over real TCP:
vectored ``write_multi``/``read_multi``/``consume`` round trips, both
directions of old/new wire compatibility, multi-reader broadcast under
interleaved seeks and re-reads (asserting delete-on-read GC and the
per-reader lag gauges stay exact), writer flush-deadline visibility,
reader shutdown hygiene, and the per-call open-poll env knob.
"""

import hashlib
import threading
import time

import pytest

from repro import obs
from repro.gridbuffer.client import GridBufferClient, _open_poll_interval
from repro.gridbuffer.protocol import OP_CONSUME, OP_READ_MULTI, OP_WRITE_MULTI
from repro.gridbuffer.server import GridBufferServer

PAYLOAD = bytes((i * 7 + i // 256) % 256 for i in range(128 * 1024))


@pytest.fixture()
def client(buffer_server):
    c = GridBufferClient(*buffer_server.address)
    yield c
    c.close()


class TestVectoredOps:
    def test_write_multi_scatters_in_one_frame(self, client):
        client.create_stream("vm")
        client.register_reader("vm", "r")
        client.write_multi("vm", [(0, b"aaaa"), (4, b"bbbb"), (12, b"dddd"), (8, b"cccc")])
        client.close_writer("vm")
        assert client.read("vm", "r", 0, 16) == b"aaaabbbbccccdddd"
        assert client._vectored is True  # the batch went out vectored

    def test_read_window_returns_contiguous_run_and_total(self, client):
        client.create_stream("rw")
        client.register_reader("rw", "r")
        for off in range(0, 12288, 4096):
            client.write("rw", off, PAYLOAD[off : off + 4096])
        client.close_writer("rw")
        data, total = client.read_window("rw", "r", 0, 1 << 20)
        assert data == PAYLOAD[:12288]  # one reply, three blocks
        assert total == 12288

    def test_read_window_min_bytes_waits_for_more(self, client):
        client.create_stream("mb")
        client.register_reader("mb", "r")
        client.write("mb", 0, b"x" * 100)

        def late_writer():
            time.sleep(0.05)
            client.write("mb", 100, b"y" * 100)

        t = threading.Thread(target=late_writer)
        t.start()
        data, _ = client.read_window("mb", "r", 0, 4096, min_bytes=150)
        t.join()
        assert len(data) >= 150  # blocked past the first write

    def test_consume_acks_without_transfer(self, client, buffer_server):
        client.create_stream("ck")
        client.register_reader("ck", "r")
        client.write("ck", 0, b"z" * 8192)
        assert client.consume("ck", "r", [(0, 8192)]) is True
        stats = client.stats("ck")
        assert stats["bytes_read"] == 8192     # counted as served
        assert stats["blocks_in_table"] == 0   # delete-on-read fired


class TestWireCompat:
    def _strip_vectored(self, server: GridBufferServer) -> None:
        for op in (OP_WRITE_MULTI, OP_READ_MULTI, OP_CONSUME):
            del server._rpc._handlers[op]

    def _stream_roundtrip(self, client: GridBufferClient, name: str) -> None:
        w = client.open_writer(name, coalesce_bytes=16 * 1024)
        for off in range(0, len(PAYLOAD), 4096):
            w.write(PAYLOAD[off : off + 4096])
        w.close()
        r = client.open_reader(name, read_ahead=True, read_ahead_depth=3)
        got = r.read()
        r.close()
        assert hashlib.sha256(got).hexdigest() == hashlib.sha256(PAYLOAD).hexdigest()

    def test_new_client_against_old_server_falls_back(self, buffer_server):
        """Server without the vectored ops: client degrades per block."""
        self._strip_vectored(buffer_server)
        client = GridBufferClient(*buffer_server.address)
        try:
            self._stream_roundtrip(client, "compat-old-server")
            assert client._vectored is False  # fallback is pinned
        finally:
            client.close()

    def test_old_client_against_new_server(self, client):
        """Client that never sends vectored ops works unchanged."""
        client._vectored = False
        self._stream_roundtrip(client, "compat-old-client")

    def test_shared_cache_disabled_against_old_server(self, buffer_server):
        """No consume op -> shared cache silently off, reads still real."""
        self._strip_vectored(buffer_server)
        client = GridBufferClient(*buffer_server.address)
        try:
            w = client.open_writer("compat-shared", n_readers=1)
            w.write(b"q" * 4096)
            w.close()
            r = client.open_reader("compat-shared", shared_cache=True)
            assert r._shared is None  # capability probe said no
            assert r.read() == b"q" * 4096
            r.close()
        finally:
            client.close()


class TestBroadcastStress:
    N_READERS = 3

    def test_interleaved_seeks_rereads_gc_and_lag(self, client, buffer_server):
        """Broadcast + cache stream under seek/re-read churn.

        Every reader re-reads a prefix mid-stream (cache-file path),
        then drains to EOF.  Afterwards delete-on-read GC must have
        emptied the hash table and every per-reader lag gauge must be
        zero even though some bytes were served via the shared cache
        and acked with ``gb.consume``.
        """
        name = "stress"
        digest = hashlib.sha256(PAYLOAD).hexdigest()
        w = client.open_writer(
            name, n_readers=self.N_READERS, cache=True, coalesce_bytes=16 * 1024
        )
        readers = [
            client.open_reader(
                name,
                reader_id=f"r{i}",
                read_ahead=True,
                read_ahead_depth=3,
                shared_cache=True,
            )
            for i in range(self.N_READERS)
        ]
        errors = []

        def write_all():
            try:
                for off in range(0, len(PAYLOAD), 4096):
                    w.write(PAYLOAD[off : off + 4096])
                w.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def read_all(r, i):
            try:
                first = r.read(24 * 1024)
                # Interleave: jump back and re-read a slice (cache hit
                # server-side or shared-cache hit locally), then resume.
                r.seek(4096 * i)
                again = r.read(8192)
                assert again == PAYLOAD[4096 * i : 4096 * i + 8192]
                r.seek(len(first))
                rest = r.read()
                got = first + rest
                assert hashlib.sha256(got).hexdigest() == digest, f"reader {i} corrupt"
                r.close()
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=write_all)] + [
            threading.Thread(target=read_all, args=(r, i)) for i, r in enumerate(readers)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == [], errors

        # Delete-on-read GC: every block consumed by all three readers
        # (via real reads or consume acks) must have left the table.
        stats = client.stats(name)
        assert stats["blocks_in_table"] == 0
        assert stats["bytes_in_table"] == 0
        # Each reader accounted for at least the full stream (re-reads
        # can only add); vectored serving must not lose accounting.
        assert stats["bytes_read"] >= self.N_READERS * len(PAYLOAD)

        # Per-reader lag gauges: everyone drained to the high-water mark.
        snap = obs.snapshot()
        lag = snap.get("buffer_reader_lag_bytes")
        assert lag is not None
        ours = [s for s in lag["series"] if s["labels"].get("stream") == name]
        assert len(ours) == self.N_READERS
        assert all(s["value"] == 0 for s in ours), ours


class TestWriterFlushDeadline:
    def test_deadline_pushes_partial_batch(self, client):
        w = client.open_writer("dl", coalesce_bytes=1 << 20, flush_after=0.05)
        w.write(b"p" * 1000)  # far below the batch limit
        deadline = time.monotonic() + 5.0
        while client.high_water("dl") < 1000:
            assert time.monotonic() < deadline, "deadline flush never happened"
            time.sleep(0.01)
        assert w.rpc_writes == 1
        w.close()

    def test_zero_deadline_keeps_bytes_local_until_flush(self, client):
        w = client.open_writer("dl0", coalesce_bytes=1 << 20, flush_after=0)
        w.write(b"p" * 1000)
        time.sleep(0.15)
        assert client.high_water("dl0") == 0  # nothing pushed
        w.flush()
        assert client.high_water("dl0") == 1000
        w.close()


class TestReaderShutdown:
    def test_close_joins_window_threads_mid_rpc(self, client):
        """close() must unblock in-flight window RPCs and join workers."""
        client.create_stream("shut")
        client.write("shut", 0, b"a" * 4096)  # writer stays open
        r = client.open_reader("shut", read_ahead=True, read_ahead_depth=4)
        assert r.read(4096) == b"a" * 4096
        # The window is now blocked server-side waiting for bytes that
        # will never arrive (writer never closes).
        time.sleep(0.1)
        window = r._ra
        workers = list(window._threads)
        t0 = time.perf_counter()
        r.close()
        elapsed = time.perf_counter() - t0
        assert elapsed < 3.0, f"close() hung {elapsed:.1f}s on blocked read-ahead"
        assert all(not t.is_alive() for t in workers), "window thread leaked"
        assert r._ra is None and r._rpc is None  # connections released

    def test_repeated_open_close_leaks_no_threads(self, client):
        client.create_stream("leak", n_readers=5)
        client.write("leak", 0, b"b" * 4096)
        client.close_writer("leak")
        for i in range(5):
            r = client.open_reader("leak", reader_id=f"r{i}", read_ahead=True)
            assert r.read() == b"b" * 4096
            r.close()
        lingering = [
            t.name for t in threading.enumerate() if t.name.startswith("gb-window")
        ]
        assert lingering == [], lingering


class TestOpenPollEnv:
    def test_interval_read_per_call(self, monkeypatch):
        monkeypatch.setenv("REPRO_BUFFER_OPEN_POLL", "0.123")
        assert _open_poll_interval() == 0.123
        monkeypatch.setenv("REPRO_BUFFER_OPEN_POLL", "0.456")
        assert _open_poll_interval() == 0.456  # no import-time caching

    def test_open_reader_uses_env_interval(self, client, monkeypatch):
        import repro.gridbuffer.client as mod

        monkeypatch.setenv("REPRO_BUFFER_OPEN_POLL", "0.321")
        seen = []
        monkeypatch.setattr(mod.time, "sleep", lambda s: seen.append(s))
        with pytest.raises(TimeoutError):
            client.open_reader("never-created", open_timeout=0.05)
        assert 0.321 in seen
