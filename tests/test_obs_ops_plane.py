"""The built-in ops plane (``_obs.*``), the top CLI, and the loop
stall watchdog (ARCHITECTURE.md §12)."""

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro import obs
from repro.obs import top as obs_top
from repro.obs.ops import OPS
from repro.transport.tcp import RpcClient, RpcServer, ThreadedRpcServer

SRC = str(Path(__file__).resolve().parents[1] / "src")


@pytest.fixture(params=["async", "threaded"])
def server(request):
    cls = RpcServer if request.param == "async" else ThreadedRpcServer
    with cls() as srv:
        srv.register("app.echo", lambda header, payload: ({"n": header.get("n")}, payload))
        yield srv


class TestOpsPlane:
    def test_ops_installed_on_both_server_classes(self, server):
        for op in OPS:
            assert op in server._handlers

    def test_health(self, server):
        host, port = server.address
        client = RpcClient(host, port)
        try:
            health, _ = client.call("_obs.health")
        finally:
            client.close()
        assert health["status"] == "ok"
        assert health["pid"] == os.getpid()
        assert health["uptime_s"] >= 0
        assert health["proc"] == obs.get_tracer().proc
        assert "app.echo" in health["ops"]
        assert set(OPS) <= set(health["ops"])

    def test_health_includes_service_info_when_exposed(self, server):
        server.health_info = lambda: {"kind": "test-service", "streams": 3}
        host, port = server.address
        client = RpcClient(host, port)
        try:
            health, _ = client.call("_obs.health")
        finally:
            client.close()
        assert health["service"] == {"kind": "test-service", "streams": 3}

    def test_health_survives_broken_service_hook(self, server):
        def broken():
            raise RuntimeError("collector exploded")

        server.health_info = broken
        host, port = server.address
        client = RpcClient(host, port)
        try:
            health, _ = client.call("_obs.health")
        finally:
            client.close()
        assert health["status"] == "ok"
        assert "RuntimeError" in health["service"]["error"]

    def test_metrics_json_snapshot(self, server):
        host, port = server.address
        client = RpcClient(host, port)
        try:
            client.call("app.echo", {"n": 1})
            header, body = client.call("_obs.metrics")
        finally:
            client.close()
        assert header["format"] == "json"
        snapshot = json.loads(body)
        # The echo we just made is already in the served snapshot.
        requests = snapshot["rpc_server_requests_total"]["series"]
        assert any("app.echo" in str(s.get("labels")) for s in requests)

    def test_metrics_text_exposition(self, server):
        host, port = server.address
        client = RpcClient(host, port)
        try:
            header, body = client.call("_obs.metrics", {"format": "text"})
        finally:
            client.close()
        assert header["format"] == "text"
        assert b"rpc_server_requests_total" in body

    def test_spans_tail(self, server):
        sink = obs.MemorySink()
        prior = obs.configure(sink)
        try:
            with obs.span("tail-marker", probe=True):
                pass
            host, port = server.address
            client = RpcClient(host, port)
            try:
                header, body = client.call("_obs.spans_tail", {"limit": 50})
            finally:
                client.close()
        finally:
            obs.configure(prior)
        assert header["count"] >= 1
        names = [json.loads(line)["name"] for line in body.decode().splitlines()]
        assert "tail-marker" in names

    def test_obs_ops_are_idempotent(self):
        from repro.transport.tcp import IDEMPOTENT_OPS

        assert set(OPS) <= IDEMPOTENT_OPS


class TestTopCli:
    def test_poll_peer_live(self, server):
        host, port = server.address
        row = obs_top.poll_peer(f"{host}:{port}", timeout=5.0)
        assert row["status"] == "ok"
        assert row["pid"] == os.getpid()
        assert row["requests"] >= 0

    def test_poll_peer_down_is_a_row_not_a_crash(self):
        row = obs_top.poll_peer("127.0.0.1:1", timeout=0.5)
        assert row["status"] == "down"
        assert "error" in row

    def test_main_renders_table_and_exit_codes(self, server, capsys):
        host, port = server.address
        assert obs_top.main([f"{host}:{port}", "--once"]) == 0
        out = capsys.readouterr().out
        assert "PEER" in out and "1/1 peers up" in out
        # A dead peer flips the exit code but still renders.
        assert obs_top.main([f"{host}:{port}", "127.0.0.1:1",
                             "--once", "--timeout", "0.5"]) == 1
        out = capsys.readouterr().out
        assert "down" in out


class TestLoopWatchdog:
    """A blocking handler mis-registered inline must be named by
    ``loop_stall_total``.  Watchdog cadence is frozen at import, so the
    tight thresholds need a fresh interpreter."""

    SCRIPT = """
import json, time
from repro import obs
from repro.transport.tcp import RpcClient, RpcServer

def block(header, payload):
    time.sleep(0.3)  # blocks the event loop: exactly the bug to catch
    return {}, b""

with RpcServer() as srv:
    srv.register("bad.block", block, inline=True)
    host, port = srv.address
    client = RpcClient(host, port)
    client.call("bad.block")
    time.sleep(0.3)  # at least one watchdog tick lands after the stall
    client.close()

snap = obs.snapshot()
fam = snap.get("loop_stall_total") or {"series": []}
print(json.dumps({
    "stalls": [(s["labels"], s["value"]) for s in fam["series"]],
    "lag_present": "rpc_loop_lag_seconds" in snap,
}))
"""

    def test_blocking_inline_handler_increments_stall_counter(self):
        env = dict(
            os.environ,
            PYTHONPATH=SRC,
            REPRO_LOOP_WATCHDOG_S="0.05",
            REPRO_LOOP_STALL_S="0.1",
        )
        proc = subprocess.run(
            [sys.executable, "-c", self.SCRIPT],
            env=env, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        result = json.loads(proc.stdout.strip().splitlines()[-1])
        assert result["lag_present"]
        stalls = {tuple(labels.values())[0]: value
                  for labels, value in result["stalls"]}
        assert stalls.get("bad.block", 0) >= 1, result
