"""GriddLeS Name Service: the versioned, watchable control plane that
makes the FM re-wirable — even mid-run — without touching application
code."""

from .client import GnsClient, GnsWatchUnsupported, LocalGnsClient, WatchBatch
from .matcher import ConnectionMatcher, StreamBinding
from .persistence import dump_records, load_gns, load_records, save_gns
from .records import BufferEndpoint, GnsRecord, IOMode
from .server import GnsServer, NameService
from .store import DEFAULT_NAMESPACE, GnsAuthError, RecordStore

__all__ = [
    "GnsClient",
    "GnsWatchUnsupported",
    "LocalGnsClient",
    "WatchBatch",
    "ConnectionMatcher",
    "StreamBinding",
    "BufferEndpoint",
    "GnsRecord",
    "IOMode",
    "GnsServer",
    "NameService",
    "DEFAULT_NAMESPACE",
    "GnsAuthError",
    "RecordStore",
    "dump_records",
    "load_gns",
    "load_records",
    "save_gns",
]
