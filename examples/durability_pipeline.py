#!/usr/bin/env python3
"""The mechanical-engineering durability pipeline (paper Section 5.2).

Runs CHAMMY → PAFEC → MAKE_SF_FILES → FAST → OBJECTIVE for real —
genuine FEM stress analysis and Paris-law crack growth — in three
configurations mirroring Table 2's experiments:

1. all stages on one machine, local files (sequential);
2. all stages on one machine, Grid Buffers (pipelined);
3. stages spread over five virtual machines, Grid Buffers.

The design life in RESULT.DAT must be identical in all three — the
FM re-wiring cannot change numerics.

Run:  python examples/durability_pipeline.py
"""

import time

from repro.apps.mecheng import durability_workflow
from repro.workflow import RealRunner, plan_workflow

PARAMS = {
    "boundary_points": 64,
    "n_rings": 16,
    "hole_power": 2.5,   # slightly square hole
    "hole_aspect": 1.2,
    "crack_a0": 1e-3,
    "crack_af": 8e-3,
}


def run_configuration(label, placement, mechanism):
    wf = durability_workflow()
    coupling = {f: mechanism for f in wf.pipeline_files()}
    plan = plan_workflow(wf, placement, coupling=coupling)
    runner = RealRunner(plan, params=PARAMS, stage_timeout=120)
    t0 = time.perf_counter()
    result = runner.run()
    elapsed = time.perf_counter() - t0
    if not result.ok:
        raise SystemExit(f"{label}: FAILED: {result.errors}")
    out_machine = placement["OBJECTIVE"]
    text = (
        runner.deployment.hosts.host(out_machine)
        .resolve("/wf/durability/RESULT.DAT")
        .read_text()
    )
    life, idx = text.split()
    print(f"{label:55s} {elapsed:6.2f}s  life={float(life):.3e} cycles (crack #{idx})")
    runner.deployment.stop()
    return text


def main() -> None:
    stages = ["CHAMMY", "PAFEC", "MAKE_SF_FILES", "FAST", "OBJECTIVE"]
    print("durability pipeline — three wirings, one program\n")
    r1 = run_configuration(
        "exp1: one machine, local files (sequential)",
        {s: "jagan" for s in stages},
        "local",
    )
    r2 = run_configuration(
        "exp2: one machine, Grid Buffers (pipelined)",
        {s: "jagan" for s in stages},
        "buffer",
    )
    r3 = run_configuration(
        "exp3: five machines, Grid Buffers (distributed)",
        dict(zip(stages, ["koume00", "jagan", "dione", "vpac27", "freak"])),
        "buffer",
    )
    assert r1 == r2 == r3, "re-wiring must not change the result"
    print("\nall three configurations produced byte-identical RESULT.DAT ✓")


if __name__ == "__main__":
    main()
