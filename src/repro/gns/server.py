"""The GriddLeS Name Service.

:class:`NameService` is the in-process database ("the FM treats the
GNS as a read-only database"); :class:`GnsServer` exposes it over the
framed RPC protocol so every workflow component — on any virtual host —
consults the same configuration, and re-wiring a workflow is *only* a
matter of changing entries here (the paper's headline flexibility
claim).
"""

from __future__ import annotations

import threading
from typing import Any, Dict, List, Optional, Tuple

from ..transport.tcp import RpcError, RpcServer
from .matcher import ConnectionMatcher, ServerLocator, StreamBinding
from .records import GnsRecord, IOMode

__all__ = ["NameService", "GnsServer"]


class NameService:
    """In-memory GNS database plus the direct-connection matcher."""

    def __init__(self, locate_buffer_server: Optional[ServerLocator] = None):
        self._records: List[GnsRecord] = []
        self._lock = threading.Lock()
        self.matcher = ConnectionMatcher(locate_buffer_server)

    # -- record management -------------------------------------------------
    def add(self, record: GnsRecord) -> None:
        with self._lock:
            self._records.append(record)

    def add_all(self, records: list[GnsRecord]) -> None:
        with self._lock:
            self._records.extend(records)

    def remove(self, machine: str, path: str) -> int:
        """Remove records with exactly this (machine, path) pattern."""
        with self._lock:
            before = len(self._records)
            self._records = [
                r for r in self._records if not (r.machine == machine and r.path == path)
            ]
            return before - len(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()

    def records(self) -> List[GnsRecord]:
        with self._lock:
            return list(self._records)

    # -- resolution ----------------------------------------------------------
    def resolve(self, machine: str, path: str) -> GnsRecord:
        """Find the best record for an OPEN of ``path`` on ``machine``.

        Most-specific match wins (exact machine beats glob, then exact
        path); among equals the most recently added wins, so overrides
        can be layered.  With no match at all, the FM's contract is
        plain local IO, expressed as a synthesized LOCAL record.
        """
        with self._lock:
            candidates = [r for r in self._records if r.matches(machine, path)]
        if not candidates:
            return GnsRecord(machine=machine, path=path, mode=IOMode.LOCAL)
        best_idx = max(
            range(len(candidates)),
            key=lambda i: (candidates[i].specificity(), i),
        )
        return candidates[best_idx]

    # -- direct-connection matching ---------------------------------------------
    def announce(self, stream: str, role: str, machine: str, placement: str = "reader") -> StreamBinding:
        return self.matcher.announce(stream, role, machine, placement)

    def pin_stream(self, stream: str, host: str, port: int, placement: str = "reader") -> StreamBinding:
        return self.matcher.pin(stream, host, port, placement)


class GnsServer:
    """TCP front end for a :class:`NameService`."""

    def __init__(
        self,
        service: Optional[NameService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service if service is not None else NameService()
        self._rpc = RpcServer(host, port)
        self._rpc.register("gns.resolve", self._op_resolve)
        self._rpc.register("gns.add", self._op_add)
        self._rpc.register("gns.remove", self._op_remove)
        self._rpc.register("gns.list", self._op_list)
        self._rpc.register("gns.announce", self._op_announce)
        self._rpc.register("gns.pin", self._op_pin)

    @property
    def address(self) -> Tuple[str, int]:
        return self._rpc.address

    def start(self) -> "GnsServer":
        self._rpc.start()
        return self

    def stop(self) -> None:
        self._rpc.stop()

    def __enter__(self) -> "GnsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- handlers -----------------------------------------------------------
    def _op_resolve(self, header: Dict[str, Any], _payload: bytes):
        record = self.service.resolve(header["machine"], header["path"])
        return {"record": record.to_dict()}, b""

    def _op_add(self, header: Dict[str, Any], _payload: bytes):
        try:
            record = GnsRecord.from_dict(header["record"])
        except (TypeError, ValueError) as exc:
            raise RpcError("bad-record", str(exc)) from exc
        self.service.add(record)
        return {}, b""

    def _op_remove(self, header: Dict[str, Any], _payload: bytes):
        removed = self.service.remove(header["machine"], header["path"])
        return {"removed": removed}, b""

    def _op_list(self, header: Dict[str, Any], _payload: bytes):
        return {"records": [r.to_dict() for r in self.service.records()]}, b""

    def _op_announce(self, header: Dict[str, Any], _payload: bytes):
        binding = self.service.announce(
            header["stream"],
            header["role"],
            header["machine"],
            header.get("placement", "reader"),
        )
        return {
            "host": binding.host,
            "port": binding.port,
            "located": binding.located,
            "placement": binding.placement,
        }, b""

    def _op_pin(self, header: Dict[str, Any], _payload: bytes):
        binding = self.service.pin_stream(
            header["stream"],
            header["host"],
            int(header["port"]),
            header.get("placement", "reader"),
        )
        return {"host": binding.host, "port": binding.port, "located": binding.located}, b""
