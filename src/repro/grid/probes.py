"""Simulated NWS probing: periodic measurements of a live network.

The paper's NWS runs small probe transfers between hosts and feeds the
forecasters.  :class:`ProbeDaemon` does the same inside the simulator:
every ``interval`` it samples the *current* link spec (optionally with
multiplicative noise from a seeded RNG) and records a
:class:`~repro.grid.nws.Measurement`.  Combined with
:meth:`~repro.sim.netsim.Network.set_spec`, this lets experiments model
changing network weather and test the FM's dynamic re-mapping in
virtual time.
"""

from __future__ import annotations

from typing import Iterable, Optional, Tuple

import numpy as np

from ..sim.engine import Environment
from ..sim.netsim import Network
from .nws import Measurement, NetworkWeatherService

__all__ = ["ProbeDaemon"]


class ProbeDaemon:
    """Feeds an NWS from a simulated network, one process per path."""

    def __init__(
        self,
        env: Environment,
        network: Network,
        nws: NetworkWeatherService,
        paths: Iterable[Tuple[str, str]],
        interval: float = 30.0,
        noise: float = 0.0,
        seed: int = 0,
    ):
        if interval <= 0:
            raise ValueError("interval must be positive")
        if noise < 0:
            raise ValueError("noise must be >= 0")
        self.env = env
        self.network = network
        self.nws = nws
        self.paths = list(paths)
        self.interval = interval
        self.noise = noise
        self._rng = np.random.default_rng(seed)
        self.probes_sent = 0
        self._running = False

    def start(self, horizon: Optional[float] = None) -> None:
        """Launch one probing process per path.

        ``horizon`` bounds probing in virtual time; without it the
        daemon would keep the event queue non-empty forever.
        """
        if self._running:
            raise RuntimeError("probe daemon already started")
        self._running = True
        for src, dst in self.paths:
            self.env.process(self._probe_loop(src, dst, horizon), name=f"probe:{src}->{dst}")

    def _sample(self, src: str, dst: str) -> Measurement:
        spec = self.network.spec(src, dst)
        bw, lat = spec.bandwidth, spec.latency
        if self.noise > 0:
            bw *= float(np.exp(self._rng.normal(0.0, self.noise)))
            lat *= float(np.exp(self._rng.normal(0.0, self.noise)))
        return Measurement(time=self.env.now, bandwidth=max(bw, 1.0), latency=max(lat, 0.0))

    def _probe_loop(self, src: str, dst: str, horizon: Optional[float]):
        while horizon is None or self.env.now + self.interval <= horizon:
            yield self.env.timeout(self.interval)
            self.nws.record(src, dst, self._sample(src, dst))
            self.probes_sent += 1
        return None
