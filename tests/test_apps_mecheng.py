"""Tests for the mechanical-engineering case study."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.mecheng.chammy import HoleShape, boundary_points
from repro.apps.mecheng.fast import ParisLaw, cycles_closed_form, cycles_to_grow
from repro.apps.mecheng.make_sf import boundary_tangential_stress
from repro.apps.mecheng.objective import design_life
from repro.apps.mecheng.pafec import (
    Material,
    build_ring_mesh,
    solve_plane_stress,
    stress_concentration_factor,
)
from repro.apps.mecheng.pipeline import (
    TABLE2_EXPERIMENTS,
    durability_sim_workflow,
    durability_workflow,
    table2_plan,
)


class TestChammy:
    def test_circle_radius_constant(self):
        shape = HoleShape(r0=2.0, power=2.0, aspect=1.0)
        pts = boundary_points(shape, 64)
        radii = np.hypot(pts[:, 0], pts[:, 1])
        assert np.allclose(radii, 2.0, rtol=1e-9)

    def test_aspect_squashes_y(self):
        shape = HoleShape(r0=1.0, aspect=2.0)
        pts = boundary_points(shape, 64)
        assert pts[:, 1].max() == pytest.approx(0.5, rel=1e-6)
        assert pts[:, 0].max() == pytest.approx(1.0, rel=1e-6)

    def test_power_increases_corner_fullness(self):
        round_hole = boundary_points(HoleShape(power=2.0), 360)
        square_hole = boundary_points(HoleShape(power=8.0), 360)
        # At 45 degrees the squarer hole extends further out.
        idx = 45
        assert np.hypot(*square_hole[idx]) > np.hypot(*round_hole[idx])

    def test_validation(self):
        with pytest.raises(ValueError):
            HoleShape(r0=0)
        with pytest.raises(ValueError):
            HoleShape(power=0.5)
        with pytest.raises(ValueError):
            HoleShape(aspect=0)
        with pytest.raises(ValueError):
            boundary_points(HoleShape(), 4)

    @given(
        power=st.floats(min_value=1.0, max_value=10.0),
        aspect=st.floats(min_value=0.3, max_value=3.0),
        r0=st.floats(min_value=0.1, max_value=5.0),
    )
    @settings(max_examples=50, deadline=None)
    def test_boundary_always_closed_and_positive(self, power, aspect, r0):
        pts = boundary_points(HoleShape(r0=r0, power=power, aspect=aspect), 48)
        radii = np.hypot(pts[:, 0], pts[:, 1])
        assert np.all(radii > 0)
        # Superellipses bulge up to a factor 2^(1/2 - 1/p) < sqrt(2)
        # beyond r0 at the diagonals.
        bound = r0 * max(1.0, 1.0 / aspect) * np.sqrt(2.0) + 1e-9
        assert np.all(radii <= bound)


class TestPafec:
    @pytest.fixture(scope="class")
    def solution(self):
        boundary = boundary_points(HoleShape(), 64)
        mesh = build_ring_mesh(boundary, n_rings=20, half_width=6.0)
        return mesh, solve_plane_stress(mesh)

    def test_kirsch_scf(self, solution):
        """Circular hole under uniaxial tension: SCF ~ 3 (Kirsch)."""
        _, result = solution
        assert 2.7 < stress_concentration_factor(result) < 3.6

    def test_peak_at_hole_sides(self, solution):
        mesh, result = solution
        hole_elems = np.nonzero((mesh.triangles < mesh.n_around).any(axis=1))[0]
        e = hole_elems[np.argmax(result.von_mises[hole_elems])]
        cx, cy = mesh.nodes[mesh.triangles[e]].mean(axis=0)
        angle = abs(np.degrees(np.arctan2(cy, cx)))
        assert angle < 15 or angle > 165

    def test_far_field_stress_recovered(self, solution):
        """Elements far from the hole should carry roughly sigma_yy =
        applied, sigma_xx ~ 0."""
        mesh, result = solution
        centroids = mesh.nodes[mesh.triangles].mean(axis=1)
        far = np.hypot(centroids[:, 0], centroids[:, 1]) > 4.5
        syy = result.element_stress[far, 1]
        assert np.median(syy) == pytest.approx(result.applied_stress, rel=0.25)

    def test_displacements_symmetric(self, solution):
        """Top edge moves up, bottom edge moves down under tension."""
        mesh, result = solution
        uy = result.displacements[:, 1]
        top = mesh.nodes[:, 1] > 5.5
        bottom = mesh.nodes[:, 1] < -5.5
        assert uy[top].mean() > 0
        assert uy[bottom].mean() < 0

    def test_mesh_validation(self):
        with pytest.raises(ValueError):
            build_ring_mesh(np.zeros((4, 2)), n_rings=10)
        with pytest.raises(ValueError):
            build_ring_mesh(boundary_points(HoleShape(), 16), n_rings=2)

    def test_material_validation(self):
        with pytest.raises(ValueError):
            Material(youngs=0)
        with pytest.raises(ValueError):
            Material(poisson=0.6)

    def test_finer_mesh_higher_scf(self):
        """Convergence from below: coarse meshes underestimate the peak."""
        coarse = solve_plane_stress(
            build_ring_mesh(boundary_points(HoleShape(), 32), n_rings=10, half_width=6.0)
        )
        fine = solve_plane_stress(
            build_ring_mesh(boundary_points(HoleShape(), 96), n_rings=28, half_width=6.0)
        )
        assert stress_concentration_factor(fine) > stress_concentration_factor(coarse)


class TestMakeSf:
    def test_tangential_stress_peaks_at_sides(self):
        boundary = boundary_points(HoleShape(), 64)
        mesh = build_ring_mesh(boundary, n_rings=16, half_width=6.0)
        result = solve_plane_stress(mesh)
        sigma_t = boundary_tangential_stress(
            mesh.nodes, mesh.n_around, mesh.triangles, result.element_stress
        )
        peak_idx = int(np.argmax(sigma_t))
        x, y = mesh.nodes[peak_idx]
        angle = abs(np.degrees(np.arctan2(y, x)))
        assert angle < 20 or angle > 160
        # Kirsch: tangential stress ~ 3x applied at the sides.
        assert sigma_t[peak_idx] == pytest.approx(3 * result.applied_stress, rel=0.25)

    def test_coincident_points_rejected(self):
        nodes = np.zeros((8, 2))
        with pytest.raises(ValueError):
            boundary_tangential_stress(nodes, 8, np.zeros((0, 3), dtype=int), np.zeros((0, 3)))


class TestFast:
    def test_matches_closed_form_constant_stress(self):
        numeric = cycles_to_grow(200e6, 1e-3, 10e-3)
        analytic = cycles_closed_form(200e6, 1e-3, 10e-3)
        assert numeric == pytest.approx(analytic, rel=1e-3)

    def test_m_equals_2_log_form(self):
        law = ParisLaw(c=1e-11, m=2.0)
        numeric = cycles_to_grow(150e6, 1e-3, 5e-3, law=law)
        analytic = cycles_closed_form(150e6, 1e-3, 5e-3, law=law)
        assert numeric == pytest.approx(analytic, rel=1e-3)

    def test_higher_stress_shorter_life(self):
        low = cycles_to_grow(100e6, 1e-3, 10e-3)
        high = cycles_to_grow(300e6, 1e-3, 10e-3)
        assert high < low

    def test_zero_stress_infinite_life(self):
        assert cycles_to_grow(0.0, 1e-3, 10e-3) == float("inf")

    def test_no_growth_needed_zero_cycles(self):
        assert cycles_to_grow(100e6, 5e-3, 5e-3) == 0.0

    def test_stress_profile_decay_extends_life(self):
        flat = cycles_to_grow(200e6, 1e-3, 10e-3)
        decaying = cycles_to_grow(
            200e6, 1e-3, 10e-3, stress_profile=lambda a: 1.0 / (1.0 + 100 * a)
        )
        assert decaying > flat

    def test_validation(self):
        with pytest.raises(ValueError):
            ParisLaw(c=0)
        with pytest.raises(ValueError):
            ParisLaw(m=1.0)
        with pytest.raises(ValueError):
            cycles_to_grow(1e8, 0.0, 1e-2)
        with pytest.raises(ValueError):
            cycles_to_grow(1e8, 1e-3, 1e-2, steps=7)

    @given(
        sigma=st.floats(min_value=1e7, max_value=1e9),
        a0=st.floats(min_value=1e-4, max_value=1e-3),
        growth=st.floats(min_value=1.1, max_value=50.0),
        m=st.floats(min_value=1.5, max_value=5.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_numeric_matches_analytic_property(self, sigma, a0, growth, m):
        law = ParisLaw(c=2e-12, m=m)
        af = a0 * growth
        numeric = cycles_to_grow(sigma, a0, af, law=law)
        analytic = cycles_closed_form(sigma, a0, af, law=law)
        assert numeric == pytest.approx(analytic, rel=1e-2)


class TestObjective:
    def test_min_finite_life(self):
        life, idx = design_life(np.array([5e6, 2e6, float("inf"), 9e6]))
        assert life == 2e6
        assert idx == 1

    def test_all_infinite_raises(self):
        with pytest.raises(ValueError):
            design_life(np.array([float("inf")] * 3))

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            design_life(np.array([]))


class TestPipelineDefinitions:
    def test_real_workflow_structure(self):
        wf = durability_workflow()
        order = wf.topological_order()
        assert order.index("CHAMMY") < order.index("PAFEC") < order.index("MAKE_SF_FILES")
        assert order.index("FAST") < order.index("OBJECTIVE")
        assert "RESULT.DAT" in wf.final_outputs()

    def test_sim_workflow_total_work_matches_exp1(self):
        """Works were fitted so exp1 (jagan, sequential) is ~99:17."""
        from repro.grid.testbed import TESTBED

        wf = durability_sim_workflow()
        jagan = TESTBED["jagan"]
        total_work = sum(s.work for s in wf.stages.values())
        seconds = total_work / jagan.speed / (1 - jagan.idle_io_fraction)
        assert seconds == pytest.approx(99 * 60 + 17, rel=0.05)

    def test_table2_plans(self):
        assert table2_plan(1).coupling["JOB.SF"] == "local"
        assert table2_plan(2).coupling["JOB.SF"] == "buffer"
        plan3 = table2_plan(3)
        assert plan3.machine_of("PAFEC") == "jagan"
        assert plan3.machine_of("CHAMMY") == "koume00"
        with pytest.raises(KeyError):
            table2_plan(4)

    def test_experiment_metadata(self):
        assert TABLE2_EXPERIMENTS[1]["paper_total"] == 5957
        assert TABLE2_EXPERIMENTS[3]["paper_total"] == 3311
