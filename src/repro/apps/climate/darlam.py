"""DARLAM: the limited-area (regional) model.

Nested modelling per [28]/[34]: DARLAM integrates a higher-resolution
regional grid, forced at each step by the cc2lam fields (used both as
lateral boundary conditions and as a nudging target).  Crucially for
the IO study, "in some instances DARLAM re-reads some of the input
data" — after its integration it seeks back to the start of the input
stream to recompute the initial-state diagnostics, which is served by
the Grid Buffer *cache file* when the stream itself has been consumed
(Section 5.3).

Output: per-step regional diagnostics + a final summary record.
"""

from __future__ import annotations

import struct

import numpy as np

from .cc2lam import read_lam_header

__all__ = ["RegionalModel", "run_darlam", "OUT_MAGIC"]

OUT_MAGIC = b"DARLAMOUT1\n"


class RegionalModel:
    """Fine-grid advection-diffusion nudged toward the driving fields."""

    def __init__(self, nx: int, ny: int, refine: int = 2, nudge: float = 0.15):
        if refine < 1:
            raise ValueError("refine must be >= 1")
        if not 0 <= nudge <= 1:
            raise ValueError("nudge must be in [0, 1]")
        self.nx = nx * refine
        self.ny = ny * refine
        self.refine = refine
        self.nudge = nudge
        self.field: np.ndarray | None = None
        self.u = 0.3
        self.v = 0.1

    def _refine_field(self, coarse: np.ndarray) -> np.ndarray:
        """Bilinear refinement of the driving field onto the fine grid."""
        ys = np.linspace(0, coarse.shape[0] - 1, self.ny)
        xs = np.linspace(0, coarse.shape[1] - 1, self.nx)
        j0 = np.clip(ys.astype(int), 0, coarse.shape[0] - 2)
        i0 = np.clip(xs.astype(int), 0, coarse.shape[1] - 2)
        wy = (ys - j0)[:, None]
        wx = (xs - i0)[None, :]
        return (
            coarse[np.ix_(j0, i0)] * (1 - wy) * (1 - wx)
            + coarse[np.ix_(j0, i0 + 1)] * (1 - wy) * wx
            + coarse[np.ix_(j0 + 1, i0)] * wy * (1 - wx)
            + coarse[np.ix_(j0 + 1, i0 + 1)] * wy * wx
        )

    def step(self, driving: np.ndarray) -> np.ndarray:
        """One regional step forced by a coarse driving field."""
        target = self._refine_field(driving)
        if self.field is None:
            self.field = target.copy()
            return self.field
        f = self.field
        fx_minus = np.hstack([f[:, :1], f[:, :-1]])
        fx_plus = np.hstack([f[:, 1:], f[:, -1:]])
        fy_minus = np.vstack([f[:1], f[:-1]])
        fy_plus = np.vstack([f[1:], f[-1:]])
        adv = self.u * (f - fx_minus) + self.v * (f - fy_minus)
        lap = fx_minus + fx_plus + fy_minus + fy_plus - 4.0 * f
        f = f - adv + 0.2 * lap
        # Lateral boundary forcing + interior nudging toward the target.
        f[0, :], f[-1, :], f[:, 0], f[:, -1] = (
            target[0, :],
            target[-1, :],
            target[:, 0],
            target[:, -1],
        )
        self.field = (1.0 - self.nudge) * f + self.nudge * target
        return self.field


def run_darlam(io) -> None:
    """Stage entry point: integrate, write diagnostics, re-read step 0."""
    refine = int(io.param("lam_refine", 2))
    with io.open("lam_input", "rb") as src:
        nx, ny, nsteps = read_lam_header(src)
        model = RegionalModel(nx, ny, refine=refine)
        rec_bytes = nx * ny * 4
        means = np.empty(nsteps)
        with io.open("darlam_out", "wb") as out:
            out.write(OUT_MAGIC)
            out.write(struct.pack("<iii", model.nx, model.ny, nsteps))
            for step in range(nsteps):
                raw = src.read(rec_bytes)
                if len(raw) < rec_bytes:
                    raise EOFError(f"truncated LAM input at step {step}")
                coarse = np.frombuffer(raw, dtype="<f4").reshape(ny, nx).astype(np.float64)
                field = model.step(coarse)
                means[step] = float(field.mean())
                out.write(
                    struct.pack("<idd", step, float(field.mean()), float(field.std()))
                )
            # Re-read the first record (initial-state diagnostics): a
            # backwards seek on the input — the Grid Buffer cache path.
            src.seek(len(b"LAMINPUT1\n") + 12)
            raw0 = src.read(rec_bytes)
            if len(raw0) < rec_bytes:
                raise EOFError("could not re-read initial LAM record")
            initial = np.frombuffer(raw0, dtype="<f4").reshape(ny, nx)
            drift = float(means[-1] - initial.mean())
            out.write(struct.pack("<d", drift))
