"""Ablation A1: block size vs link latency.

Section 5.3 explains the Table 5 crossover: "the file copy sends larger
blocks of data, and thus the performance is less sensitive to network
latency", and the authors say they are "investigating whether we can
produce a version of the buffer code that is less sensitive to network
latency".  This ablation quantifies that: sweep Grid Buffer block size
against link latency and report where streaming beats the bulk copy.
Larger blocks are exactly the fix the authors anticipate.
"""

import repro.workflow.simrunner as simrunner
from repro.apps.climate import split_plan
from repro.bench.tables import TableBuilder, hms
from repro.workflow.simrunner import simulate_plan

BLOCK_SIZES = [4096, 16 * 1024, 64 * 1024, 256 * 1024]
PAIRINGS = [("brecca", "vpac27"), ("brecca", "freak"), ("brecca", "bouscat")]


def sweep():
    table = TableBuilder(
        "Ablation A1 — Grid Buffer block size vs link latency (total time)",
        ["pairing", "files+copy"] + [f"buf {bs//1024 or 4}K" if bs >= 1024 else str(bs) for bs in BLOCK_SIZES],
    )
    original = simrunner.GRID_BUFFER_BLOCK
    crossover_fixed = True
    try:
        for src, dst in PAIRINGS:
            copy_t = simulate_plan(split_plan(src, dst, "copy")).finish_of("darlam")
            row = [f"{src}->{dst}", hms(copy_t)]
            times = []
            for bs in BLOCK_SIZES:
                simrunner.GRID_BUFFER_BLOCK = bs
                t = simulate_plan(split_plan(src, dst, "buffer")).finish_of("darlam")
                times.append(t)
                row.append(hms(t))
            table.add_row(*row)
            # Bigger blocks must monotonically help on high-latency paths.
            if dst in ("freak", "bouscat"):
                crossover_fixed &= times[-1] < times[0]
                table.add_check(
                    f"{src}->{dst}: 256K blocks beat 4K blocks (latency sensitivity)",
                    times[-1] < times[0],
                )
                table.add_check(
                    f"{src}->{dst}: large-block buffers become competitive with copy",
                    times[-1] < 1.5 * copy_t,
                )
    finally:
        simrunner.GRID_BUFFER_BLOCK = original
    return table


def test_ablation_blocksize(once):
    table = once(sweep)
    table.print()
    assert table.all_checks_pass
