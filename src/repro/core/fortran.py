"""Fortran unformatted sequential records.

The paper's legacy codes (PAFEC, C-CAM, DARLAM) are Fortran programs
whose binary files are *unformatted sequential* — every record is
framed by 4-byte length markers, in the writing machine's byte order.
Section 3.3's heterogeneity plan needs exactly this: know the record
structure, re-order bytes between machines.

:class:`FortranRecordReader` / :class:`FortranRecordWriter` implement
the framing over any file-like object (including FM handles and Grid
Buffer streams), with explicit byte order and optional payload
translation through a :class:`~repro.core.heterogeneity.RecordSchema`.
"""

from __future__ import annotations

import struct
from typing import Iterator, Optional

from .heterogeneity import NATIVE_BYTE_ORDER, HeterogeneityError, RecordSchema

__all__ = ["FortranRecordWriter", "FortranRecordReader", "translate_fortran_stream"]


def _marker_struct(byte_order: str) -> struct.Struct:
    if byte_order == "little":
        return struct.Struct("<I")
    if byte_order == "big":
        return struct.Struct(">I")
    raise HeterogeneityError(f"byte order must be 'little' or 'big', got {byte_order!r}")


class FortranRecordWriter:
    """Writes length-framed records like a Fortran unformatted WRITE."""

    def __init__(self, fh, byte_order: str = NATIVE_BYTE_ORDER):
        self._fh = fh
        self._marker = _marker_struct(byte_order)
        self.byte_order = byte_order
        self.records_written = 0

    def write_record(self, payload: bytes) -> None:
        marker = self._marker.pack(len(payload))
        self._fh.write(marker)
        self._fh.write(payload)
        self._fh.write(marker)
        self.records_written += 1

    def write_values(self, schema: RecordSchema, record: dict) -> None:
        """Pack ``record`` with ``schema`` in this writer's byte order."""
        raw = schema.convert(schema.pack_native(record), NATIVE_BYTE_ORDER, self.byte_order)
        self.write_record(raw)


class FortranRecordReader:
    """Reads length-framed records like a Fortran unformatted READ."""

    def __init__(self, fh, byte_order: str = NATIVE_BYTE_ORDER, max_record: int = 1 << 30):
        self._fh = fh
        self._marker = _marker_struct(byte_order)
        self.byte_order = byte_order
        self.max_record = max_record
        self.records_read = 0

    def _read_exact(self, n: int) -> bytes:
        out = bytearray()
        while len(out) < n:
            chunk = self._fh.read(n - len(out))
            if not chunk:
                raise HeterogeneityError(
                    f"truncated Fortran record: wanted {n} bytes, got {len(out)}"
                )
            out += chunk
        return bytes(out)

    def read_record(self) -> Optional[bytes]:
        """Next record's payload, or None at a clean end of file."""
        head = self._fh.read(4)
        if not head:
            return None
        if len(head) < 4:
            raise HeterogeneityError("truncated leading record marker")
        (length,) = self._marker.unpack(head)
        if length > self.max_record:
            raise HeterogeneityError(
                f"record length {length} exceeds limit {self.max_record} — "
                "wrong byte order for the markers?"
            )
        payload = self._read_exact(length)
        (trailer,) = self._marker.unpack(self._read_exact(4))
        if trailer != length:
            raise HeterogeneityError(
                f"record marker mismatch: leading {length}, trailing {trailer}"
            )
        self.records_read += 1
        return payload

    def read_values(self, schema: RecordSchema) -> Optional[dict]:
        raw = self.read_record()
        if raw is None:
            return None
        return schema.unpack_native(schema.convert(raw, self.byte_order, NATIVE_BYTE_ORDER))

    def __iter__(self) -> Iterator[bytes]:
        while True:
            record = self.read_record()
            if record is None:
                return
            yield record


def translate_fortran_stream(
    src,
    dst,
    schema: RecordSchema,
    src_order: str,
    dst_order: str,
    max_records: Optional[int] = None,
) -> int:
    """Re-frame and re-order a whole unformatted file between machines.

    This is the FM's §3.3 translation pass: markers and payload are both
    converted from ``src_order`` to ``dst_order`` using the record
    schema.  Returns the number of records translated.
    """
    reader = FortranRecordReader(src, byte_order=src_order)
    writer = FortranRecordWriter(dst, byte_order=dst_order)
    count = 0
    for raw in reader:
        raw = schema.convert(raw, src_order, dst_order)
        writer.write_record(raw)
        count += 1
        if max_records is not None and count >= max_records:
            break
    return count
