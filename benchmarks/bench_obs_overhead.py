"""Overhead of the observability layer on the Grid Buffer fast path.

Re-baselined on the PR 6 stack: the stream below rides the async
engine end to end — binary wire framing, coalesced vectored writes,
windowed read-ahead — which is the hottest path the repo has.  Three
arms, interleaved and paired:

* **disabled** — :func:`repro.obs.disabled`: every counter bound to
  the null registry, no sink, no spans.
* **metrics**  — the default registry enabled (PR 4 baseline): one
  lock acquisition and a float add per bound counter.
* **traced**   — a sink configured and the run bracketed by a root
  span, so every RPC additionally opens an ``rpc.client`` span,
  injects ``_trace`` into the binary frame, and the server opens the
  matching ``rpc.server`` span (PR 7).

The instrumentation budget is <5% *including trace propagation*: the
per-RPC span costs two monotonic clock reads, one dict, and one sink
append, which must vanish next to even a loopback round trip — and
the fast path coalesces RPCs, so spans amortise over many blocks.

Emits ``BENCH_obs_overhead.json`` at the repo root so the overhead
trajectory is tracked commit to commit.
"""

import hashlib
import json
import statistics
import threading
import time
from pathlib import Path

import pytest

from repro import obs
from repro.gridbuffer.client import GridBufferClient
from repro.gridbuffer.server import GridBufferServer

LINK_LATENCY = 0.002          # one-way seconds injected per RPC
BLOCK = 4096
FILE_BYTES = BLOCK * 96       # 384 KiB per stream
COALESCE = BLOCK * 16
REPS = 5                      # paired, interleaved repetitions per arm
#: Allowed overhead: 5% relative plus a small absolute floor so timer
#: noise on a sub-100ms run cannot fail the assertion spuriously.
MAX_RELATIVE = 0.05
ABS_SLACK = 0.010


def _stream_once(address, stream: str, data: bytes, digest: str) -> float:
    """One writer -> reader pass through the fast path; returns seconds."""
    host, port = address
    client = GridBufferClient(host, port, timeout=60.0)
    errors: list = []
    ctx = obs.current_context()  # root span when the traced arm is active

    def write_all():
        with obs.attach(ctx):
            try:
                w = client.open_writer(stream, n_readers=1, coalesce_bytes=COALESCE)
                for off in range(0, FILE_BYTES, BLOCK):
                    w.write(data[off : off + BLOCK])
                w.close()
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

    def read_all():
        with obs.attach(ctx):
            try:
                r = client.open_reader(
                    stream, reader_id="r0", read_ahead=True, read_ahead_depth=4
                )
                h = hashlib.sha256()
                got = 0
                while True:
                    chunk = r.read(BLOCK)
                    if not chunk:
                        break
                    h.update(chunk)
                    got += len(chunk)
                r.close()
                assert got == FILE_BYTES, f"short read: {got}"
                assert h.hexdigest() == digest, "corrupted stream"
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

    try:
        client.create_stream(stream, n_readers=1)
        threads = [
            threading.Thread(target=write_all),
            threading.Thread(target=read_all),
        ]
        t0 = time.perf_counter()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        elapsed = time.perf_counter() - t0
    finally:
        client.close()
    if errors:
        raise errors[0]
    return elapsed


@pytest.mark.slow
def test_obs_overhead_buffer_fastpath(tmp_path):
    """Traced vs metrics-only vs uninstrumented buffer stream, paired."""
    data = bytes((i * 31) % 256 for i in range(FILE_BYTES))
    digest = hashlib.sha256(data).hexdigest()
    tracer = obs.get_tracer()

    times: dict = {"disabled": [], "metrics": [], "traced": []}
    seq = 0
    with GridBufferServer(
        cache_dir=tmp_path / "cache", simulated_latency=LINK_LATENCY
    ) as server:

        def one(arm: str) -> float:
            nonlocal seq
            seq += 1
            return _stream_once(server.address, f"ab-{arm}-{seq}", data, digest)

        one("warm")  # absorbs first-connection and import costs
        for _ in range(REPS):
            with obs.disabled():
                times["disabled"].append(one("disabled"))
            times["metrics"].append(one("metrics"))
            sink = obs.MemorySink()
            prior = obs.configure(sink)
            try:
                with tracer.span("bench.root", bench="obs_overhead"):
                    times["traced"].append(one("traced"))
            finally:
                obs.configure(prior)
            # Every RPC in the traced arm must really have carried a span
            # both ways, or the arm measures nothing.
            assert sink.spans("rpc.client"), "traced arm produced no client spans"
            assert sink.spans("rpc.server"), "traced arm produced no server spans"

    off_s = min(times["disabled"])
    for arm in ("metrics", "traced"):
        on_s = min(times[arm])
        overhead = (on_s - off_s) / off_s
        assert on_s <= off_s * (1.0 + MAX_RELATIVE) + ABS_SLACK, (
            f"{arm} overhead {overhead:+.1%} exceeds {MAX_RELATIVE:.0%} "
            f"({arm} {on_s * 1e3:.1f}ms vs disabled {off_s * 1e3:.1f}ms)"
        )

    out = {
        "bench": "obs_overhead_buffer_fastpath",
        "engine": "async",
        "link_latency_s": LINK_LATENCY,
        "file_bytes": FILE_BYTES,
        "block_size": BLOCK,
        "coalesce_bytes": COALESCE,
        "reps": REPS,
        "arms_s": {
            arm: {
                "min": round(min(vals), 5),
                "median": round(statistics.median(vals), 5),
            }
            for arm, vals in times.items()
        },
        "overhead_relative": {
            arm: round((min(times[arm]) - off_s) / off_s, 4)
            for arm in ("metrics", "traced")
        },
        "budget_relative": MAX_RELATIVE,
    }
    (Path(__file__).resolve().parents[1] / "BENCH_obs_overhead.json").write_text(
        json.dumps(out, indent=2) + "\n"
    )
