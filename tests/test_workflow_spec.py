"""Unit tests for workflow specs and the dataflow graph."""

import pytest

from repro.workflow.spec import FileUse, Stage, Workflow, WorkflowError


def diamond() -> Workflow:
    """a -> (b, c) -> d, plus an external input and final output."""
    return Workflow(
        "diamond",
        [
            Stage("a", reads=(FileUse("ext.in"),), writes=(FileUse("ab"), FileUse("ac"))),
            Stage("b", reads=(FileUse("ab"),), writes=(FileUse("bd"),)),
            Stage("c", reads=(FileUse("ac"),), writes=(FileUse("cd"),)),
            Stage("d", reads=(FileUse("bd"), FileUse("cd")), writes=(FileUse("final.out"),)),
        ],
    )


class TestStage:
    def test_validation(self):
        with pytest.raises(WorkflowError):
            Stage("s", work=-1)
        with pytest.raises(WorkflowError):
            Stage("s", chunks=0)
        with pytest.raises(WorkflowError):
            Stage("s", tail_fraction=1.5)
        with pytest.raises(WorkflowError):
            Stage("s", reads=(FileUse("f"), FileUse("f")))

    def test_fileuse_validation(self):
        with pytest.raises(WorkflowError):
            FileUse("f", nbytes=-1)
        with pytest.raises(WorkflowError):
            FileUse("f", reread_bytes=-1)

    def test_name_helpers(self):
        s = Stage("s", reads=(FileUse("a"),), writes=(FileUse("b"),))
        assert s.read_names() == ["a"]
        assert s.write_names() == ["b"]


class TestWorkflowValidation:
    def test_duplicate_stage_rejected(self):
        with pytest.raises(WorkflowError, match="duplicate stage"):
            Workflow("w", [Stage("x"), Stage("x")])

    def test_two_producers_rejected(self):
        with pytest.raises(WorkflowError, match="written by both"):
            Workflow(
                "w",
                [
                    Stage("a", writes=(FileUse("f"),)),
                    Stage("b", writes=(FileUse("f"),)),
                ],
            )

    def test_self_loop_rejected(self):
        with pytest.raises(WorkflowError, match="reads its own output"):
            Workflow("w", [Stage("a", reads=(FileUse("f"),), writes=(FileUse("f"),))])

    def test_cycle_rejected(self):
        with pytest.raises(WorkflowError, match="cycle"):
            Workflow(
                "w",
                [
                    Stage("a", reads=(FileUse("ca"),), writes=(FileUse("ab"),)),
                    Stage("b", reads=(FileUse("ab"),), writes=(FileUse("bc"),)),
                    Stage("c", reads=(FileUse("bc"),), writes=(FileUse("ca"),)),
                ],
            )


class TestGraphQueries:
    def test_pipeline_files(self):
        wf = diamond()
        assert wf.pipeline_files() == ["ab", "ac", "bd", "cd"]

    def test_external_inputs_and_outputs(self):
        wf = diamond()
        assert wf.external_inputs() == ["ext.in"]
        assert wf.final_outputs() == ["final.out"]

    def test_producer_consumer(self):
        wf = diamond()
        assert wf.producer_of("ab") == "a"
        assert wf.consumers_of("ab") == ["b"]
        assert wf.producer_of("ext.in") is None

    def test_topological_order(self):
        order = diamond().topological_order()
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_upstream(self):
        assert diamond().upstream("d") == {"a", "b", "c"}
        assert diamond().upstream("a") == set()

    def test_file_use_lookup(self):
        wf = diamond()
        assert wf.file_use("a", "ab", "write").name == "ab"
        with pytest.raises(KeyError):
            wf.file_use("a", "bd", "write")

    def test_total_pipeline_bytes(self):
        wf = Workflow(
            "w",
            [
                Stage("a", writes=(FileUse("f", 100),)),
                Stage("b", reads=(FileUse("f", 100),), writes=(FileUse("g", 50),)),
                Stage("c", reads=(FileUse("g", 50),)),
            ],
        )
        assert wf.total_pipeline_bytes() == 150

    def test_fanout_file_has_two_consumers(self):
        wf = Workflow(
            "w",
            [
                Stage("src", writes=(FileUse("shared"),)),
                Stage("c1", reads=(FileUse("shared"),)),
                Stage("c2", reads=(FileUse("shared"),)),
            ],
        )
        assert sorted(wf.consumers_of("shared")) == ["c1", "c2"]


class TestBuildHelper:
    def test_build_from_dicts(self):
        wf = Workflow.build(
            "built",
            [
                {"name": "a", "writes": ["f"], "work": 5.0},
                {"name": "b", "reads": [FileUse("f", 10)], "chunks": 4},
            ],
        )
        assert wf.stages["a"].work == 5.0
        assert wf.stages["b"].chunks == 4
        assert wf.pipeline_files() == ["f"]

    def test_build_rejects_bad_file_spec(self):
        with pytest.raises(WorkflowError):
            Workflow.build("w", [{"name": "a", "writes": [42]}])
