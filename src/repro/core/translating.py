"""Record-translating file wrappers (FM heterogeneity integration).

Section 3.3's end state: "the FM can reorder the bytes dynamically...
mapped into a neutral form as is done in XDR."  These wrappers sit on
top of any FM handle (local, remote, or Grid Buffer stream) and perform
that translation transparently:

* :class:`TranslatingReader` — the underlying file holds records in
  ``data_order``; reads return native-order bytes.
* :class:`TranslatingWriter` — accepts native-order bytes; the file
  receives ``data_order`` bytes.

Both buffer partial records internally so callers may read/write in
arbitrary sizes; only whole records are ever translated.
"""

from __future__ import annotations

import io

from ..ioutil import ReadIntoFromRead
from .heterogeneity import NATIVE_BYTE_ORDER, HeterogeneityError, RecordSchema

__all__ = ["TranslatingReader", "TranslatingWriter"]


class TranslatingReader(ReadIntoFromRead, io.RawIOBase):
    """Reads ``data_order`` records from ``inner``, yields native bytes."""

    def __init__(self, inner, schema: RecordSchema, data_order: str, close_inner: bool = True):
        super().__init__()
        if data_order not in ("little", "big"):
            raise HeterogeneityError(f"bad data_order {data_order!r}")
        self._inner = inner
        self._schema = schema
        self._order = data_order
        self._close_inner = close_inner
        self._pending = bytearray()   # translated, not yet consumed
        self._raw_tail = bytearray()  # untranslated partial record

    def readable(self) -> bool:
        return True

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        rec = self._schema.record_size
        if size is None or size < 0:
            chunks = []
            while True:
                chunk = self.read(65536)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
        while len(self._pending) < size:
            need = max(rec, size - len(self._pending))
            raw = self._inner.read(need)
            if raw:
                self._raw_tail += raw
            whole = (len(self._raw_tail) // rec) * rec
            if whole:
                block = bytes(self._raw_tail[:whole])
                del self._raw_tail[:whole]
                self._pending += self._schema.convert(block, self._order, NATIVE_BYTE_ORDER)
            if not raw:
                if self._raw_tail:
                    raise HeterogeneityError(
                        f"file ends mid-record ({len(self._raw_tail)} trailing bytes, "
                        f"record size {rec})"
                    )
                break
        out = bytes(self._pending[:size])
        del self._pending[:size]
        return out

    def close(self) -> None:
        if not self.closed:
            if self._close_inner:
                self._inner.close()
            super().close()


class TranslatingWriter(io.RawIOBase):
    """Accepts native-order bytes, writes ``data_order`` to ``inner``."""

    def __init__(self, inner, schema: RecordSchema, data_order: str, close_inner: bool = True):
        super().__init__()
        if data_order not in ("little", "big"):
            raise HeterogeneityError(f"bad data_order {data_order!r}")
        self._inner = inner
        self._schema = schema
        self._order = data_order
        self._close_inner = close_inner
        self._tail = bytearray()  # native bytes short of a record

    def writable(self) -> bool:
        return True

    def write(self, data) -> int:  # type: ignore[override]
        data = bytes(data)
        self._tail += data
        rec = self._schema.record_size
        whole = (len(self._tail) // rec) * rec
        if whole:
            block = bytes(self._tail[:whole])
            del self._tail[:whole]
            self._inner.write(self._schema.convert(block, NATIVE_BYTE_ORDER, self._order))
        return len(data)

    def flush(self) -> None:
        if not self._inner.closed:
            self._inner.flush()

    def close(self) -> None:
        if self.closed:
            return
        try:
            if self._tail:
                raise HeterogeneityError(
                    f"closing with {len(self._tail)} bytes of an incomplete record "
                    f"(record size {self._schema.record_size})"
                )
            if self._close_inner:
                self._inner.close()
        finally:
            super().close()
