"""Client-side Grid Buffer API.

Two layers:

* :class:`GridBufferClient` — thin RPC mirror of the service methods,
  one per (process, server) pair.  Its transport is a *pooled*
  :class:`~repro.transport.tcp.RpcClient`, so concurrent calls (a
  read-ahead window, a writer flushing while a stats poll runs) fly in
  parallel instead of serialising behind one connection lock.  The
  vectored fast-path ops (``gb.write_multi``, ``gb.read_multi``,
  ``gb.consume``) are used when the server speaks them and fall back
  to the per-block ops against an old server — both directions stay
  wire compatible.
* :class:`BufferWriter` / :class:`BufferReader` — file-like adapters
  the FM's Grid Buffer Client uses.  The writer coalesces small writes
  into batched vectored RPCs behind a *bounded flush deadline* (safe
  by default: downstream visibility lags by at most the deadline); the
  reader keeps an adaptive window of up to N windowed reads in flight,
  sized from measured link estimates when a
  :class:`~repro.core.trace.TransferMonitor` is attached.

Because a blocking remote read parks a server thread, every reader
still uses its own demand connection, and the read-ahead window owns a
separate pooled connection set, so a request blocked server-side never
head-of-line blocks demand traffic.  Co-located readers of one
broadcast stream can share a per-process block cache: each block is
fetched from the server once and the other readers acknowledge their
consumption with cheap vectored ``gb.consume`` calls, keeping
delete-on-read GC and per-reader lag gauges exact.
"""

from __future__ import annotations

import io
import os
import threading
import time
import uuid
from bisect import bisect_left, bisect_right, insort
from collections import OrderedDict
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import faults, ioutil, obs
from ..ioutil import ReadIntoFromRead
from ..transport.tcp import RpcClient, RpcError
from .protocol import (
    DEFAULT_READ_BUDGET,
    OP_ABORT,
    OP_CLOSE_WRITER,
    OP_CONSUME,
    OP_CONSUME_MULTI,
    OP_CREATE,
    OP_DROP,
    OP_EXISTS,
    OP_HIGH_WATER,
    OP_PEER_READ,
    OP_READ,
    OP_READ_MULTI,
    OP_REGISTER_READER,
    OP_RESUME,
    OP_STATS,
    OP_WRITE,
    OP_WRITE_MULTI,
)

__all__ = ["GridBufferClient", "BufferWriter", "BufferReader"]


def _open_poll_interval() -> float:
    """Poll cadence while waiting for a stream to be created.

    Read from the environment *per call* (not at import time) so tests
    and deployments can retune it without reimporting the module.
    """
    return float(os.environ.get("REPRO_BUFFER_OPEN_POLL", "0.01"))


def _default_flush_deadline() -> float:
    """Upper bound on how long coalesced writer bytes may stay local."""
    return float(os.environ.get("REPRO_BUFFER_FLUSH_DEADLINE", "0.02"))


_READAHEAD_HITS = obs.counter(
    "buffer_readahead_hits_total",
    "Client reads served from the read-ahead window",
    labelnames=("stream",),
)
_WRITE_RPCS = obs.counter(
    "buffer_write_rpcs_total",
    "WRITE RPCs issued by client-side writers",
    labelnames=("stream",),
)
_DEADLINE_FLUSHES = obs.counter(
    "buffer_flush_deadline_total",
    "Coalesced writer runs pushed out by the flush deadline",
    labelnames=("stream",),
)
_SHARED_HITS = obs.counter(
    "buffer_shared_cache_hits_total",
    "Reads served from the per-process shared block cache",
    labelnames=("stream",),
)
_VECTOR_FALLBACKS = obs.counter(
    "buffer_vectored_fallbacks_total",
    "Vectored ops refused by an old server (per-block fallback taken)",
    labelnames=("op",),
)
_READER_RESUMES = obs.counter(
    "buffer_reader_resumes_total",
    "Reader connections re-established (redial + re-register + resume)",
    labelnames=("stream",),
)
_WRITER_ABORTS = obs.counter(
    "buffer_writer_aborts_total",
    "Streams marked failed by a writer-side abort",
    labelnames=("stream",),
)
_PEER_HITS = obs.counter(
    "peer_cache_hits_total",
    "Read-ahead fetches served by a cooperative-cache peer",
    labelnames=("stream",),
)
_PEER_FETCH_BYTES = obs.counter(
    "peer_fetch_bytes_total",
    "Bytes fetched from cooperative-cache peers instead of the origin",
    labelnames=("stream",),
)
_PEER_DEMOTIONS = obs.counter(
    "peer_demotions_total",
    "Peers demoted by a fetcher (error/timeout/checksum/miss)",
    labelnames=("reason",),
)

#: Pending holder advertisements flush once newly cached bytes cross
#: this threshold (evictions flush on the next piggyback regardless).
_ADV_FLUSH_BYTES = 256 * 1024

#: Peers answer from RAM or error immediately, so peer fetches run on a
#: short timeout — a dead peer should demote fast, not stall the window.
_PEER_TIMEOUT = 5.0

#: Hint fan-out requested from the origin per read.
_HINT_K = 3

#: Misses (peer lacked a hinted range) tolerated before demotion;
#: errors, timeouts and checksum mismatches demote immediately.
_MISS_STRIKES = 3

#: Peer fetches span this many window chunks per request.  Peers serve
#: from RAM, so the per-request cost (framing, crc, loop dispatch) —
#: not bandwidth — bounds a popular holder; bigger spans amortise it.
_PEER_SPAN_CHUNKS = 4

#: "Drop everything" range end used to withdraw a holder registration.
_DROP_ALL_END = 1 << 62


# ---------------------------------------------------------------------------
# Shared per-process block cache (broadcast dedup)
# ---------------------------------------------------------------------------


class _SharedStreamCache:
    """Recently fetched runs of one remote stream, shared process-wide.

    R co-located readers of the same broadcast stream fetch each block
    from the server once; the other R-1 serve it from here and batch
    ``gb.consume`` acknowledgements instead of re-transferring.  Runs
    are evicted LRU once ``capacity_bytes`` is exceeded — a straggler
    that falls too far behind simply falls back to real reads (served
    by the stream's cache file server-side).
    """

    def __init__(
        self, capacity_bytes: int = 8 * 1024 * 1024, gen: int = 0, name: str = ""
    ):
        self._capacity = max(1, capacity_bytes)
        self._lock = threading.Lock()
        self._entries: "OrderedDict[int, bytes]" = OrderedDict()
        # crc32 of each run, taken at insert time.  Serving paths
        # re-verify against it, so a run that rots in memory (or is
        # poisoned by the chaos injector) is discarded — the reader
        # falls through to the origin — instead of being handed to a
        # local sibling or a remote peer.
        self._crcs: Dict[int, int] = {}
        self._index: List[int] = []
        self._max_len = 0
        self._bytes = 0
        self.eof_total: Optional[int] = None
        self.refs = 0
        self.hits = 0
        self.inserts = 0
        #: Stream generation this cache mirrors (part of the registry
        #: key): a re-created stream gets a fresh cache, never stale
        #: bytes from the previous incarnation.
        self.gen = gen
        #: Stream name, used only to label fault-injection hooks and
        #: discard events.
        self.name = name
        #: "host:port" of this process's peer server once a peer-enabled
        #: reader attached; None while the cache is private.
        self.peer_addr: Optional[str] = None
        # Pending consume acknowledgements from *all* co-located
        # readers, merged here so one ``gb.consume_multi`` frame (and
        # one server-side GC pass) covers the whole group per flush.
        self._acks: Dict[str, List[List[int]]] = {}
        self._ack_bytes = 0
        self.ack_flushes = 0
        # Pending holder advertisement: ranges newly cached / LRU-evicted
        # since the last flush, piggybacked onto consume acks so the
        # origin's holder map tracks what this process can actually
        # serve to peers.
        self._pending_holds: List[List[int]] = []
        self._pending_drops: List[List[int]] = []
        self._pending_hold_bytes = 0

    def ack(
        self, reader_id: str, start: int, end: int, flush_bytes: int
    ) -> Optional[List[Tuple[str, List[List[int]]]]]:
        """Queue a consumed range; returns the batch to send once the
        aggregate (across all readers) crosses ``flush_bytes``."""
        if end <= start:
            return None
        with self._lock:
            runs = self._acks.setdefault(reader_id, [])
            if runs and runs[-1][1] == start:
                runs[-1][1] = end
            else:
                runs.append([start, end])
            self._ack_bytes += end - start
            if self._ack_bytes < flush_bytes:
                return None
            return self._drain_acks_locked()

    def drain_acks(self) -> Optional[List[Tuple[str, List[List[int]]]]]:
        with self._lock:
            return self._drain_acks_locked()

    def _drain_acks_locked(self) -> Optional[List[Tuple[str, List[List[int]]]]]:
        if not self._acks:
            return None
        entries = [(rid, runs) for rid, runs in self._acks.items()]
        self._acks = {}
        self._ack_bytes = 0
        self.ack_flushes += 1
        return entries

    def note_eof(self, total: Optional[int]) -> None:
        if total is None:
            return
        with self._lock:
            self.eof_total = total if self.eof_total is None else min(self.eof_total, total)

    def put(self, offset: int, data: bytes, advertise: bool = True) -> None:
        """Cache a run; ``advertise=False`` keeps it out of the holder map.

        Peer-fetched runs are cached (local siblings benefit) but never
        advertised: only origin-fetched bytes make a process a holder.
        Otherwise holders beget holders and fetches relay through
        chains of peers — each hop re-pays serve+verify cost — instead
        of going one hop to a process that actually read from the
        origin.
        """
        if not data:
            return
        data = bytes(data)
        # Checksum *before* the poison hook: a "corrupt" rule on
        # gb.cache flips a bit in the stored copy while the recorded
        # crc stays honest — exactly the shape of real memory rot, and
        # what the serve-time verify in get()/peek_range() must catch.
        crc = ioutil.crc32(data)
        injector = faults.ACTIVE
        if injector is not None:
            if injector.fire("gb.cache", "put", self.name) == "corrupt":
                data = injector.corrupt_bytes(data)
        with self._lock:
            if offset in self._entries:
                self._entries.move_to_end(offset)
                return
            self._entries[offset] = data
            self._crcs[offset] = crc
            insort(self._index, offset)
            self._max_len = max(self._max_len, len(data))
            self._bytes += len(data)
            self.inserts += 1
            if advertise:
                self._note_range_locked(self._pending_holds, offset, offset + len(data))
                self._pending_hold_bytes += len(data)
            while self._bytes > self._capacity and len(self._entries) > 1:
                old_off, old = self._entries.popitem(last=False)
                self._crcs.pop(old_off, None)
                self._bytes -= len(old)
                i = bisect_left(self._index, old_off)
                if i < len(self._index) and self._index[i] == old_off:
                    del self._index[i]
                # Report the eviction on the next advertisement flush so
                # the origin stops hinting peers at bytes we dropped.
                self._note_range_locked(self._pending_drops, old_off, old_off + len(old))

    @staticmethod
    def _note_range_locked(runs: List[List[int]], start: int, end: int) -> None:
        if runs and runs[-1][1] == start:
            runs[-1][1] = end
        else:
            runs.append([start, end])

    def _verify_locked(self, off: int, data: bytes) -> bool:
        """Serve-time integrity check; a corrupt run is discarded.

        The discard is also queued as a holder-map *drop* so the origin
        stops hinting peers at bytes we can no longer vouch for, and
        the caller sees a plain miss — readers fall through to the
        origin, which is always authoritative.
        """
        want = self._crcs.get(off)
        if want is None or ioutil.crc32(data) == want:
            return True
        del self._entries[off]
        self._crcs.pop(off, None)
        self._bytes -= len(data)
        i = bisect_left(self._index, off)
        if i < len(self._index) and self._index[i] == off:
            del self._index[i]
        self._note_range_locked(self._pending_drops, off, off + len(data))
        ioutil.count_integrity_error("gb.cache", "discard")
        obs.event(
            "gb.cache_discard", stream=self.name, offset=off, length=len(data)
        )
        return False

    def take_adv(
        self, force: bool = False, threshold: int = _ADV_FLUSH_BYTES
    ) -> Optional[Tuple[List[List[int]], List[List[int]]]]:
        """Drain the pending (holds, drops) advertisement, or None.

        Without ``force``, holds accumulate until ``threshold`` bytes —
        advertisement is lazy — but any pending *drop* flushes eagerly:
        a stale "peer holds X" hint costs every hinted reader a miss.
        """
        with self._lock:
            if not self._pending_holds and not self._pending_drops:
                return None
            if (
                not force
                and not self._pending_drops
                and self._pending_hold_bytes < threshold
            ):
                return None
            holds, drops = self._pending_holds, self._pending_drops
            self._pending_holds, self._pending_drops = [], []
            self._pending_hold_bytes = 0
            return holds, drops

    def peek_range(self, pos: int, length: int) -> Optional[bytes]:
        """Cached bytes at ``pos`` (at most ``length``) for a peer read.

        Unlike :meth:`get` this does not promote the run in LRU order or
        count a local hit — remote demand should not be able to pin a
        run that local readers have moved past.  Contiguous runs are
        stitched up to ``length``: serving one big peer read instead of
        N small ones is what keeps a popular holder's event loop from
        saturating on per-request overhead.
        """
        if length <= 0:
            return None
        with self._lock:
            i = bisect_right(self._index, pos) - 1
            floor = pos - self._max_len
            start = None
            while i >= 0:
                off = self._index[i]
                if off < floor:
                    break
                data = self._entries.get(off)
                if data is not None and off <= pos < off + len(data):
                    start = i
                    break
                i -= 1
            if start is None:
                return None
            off = self._index[start]
            data = self._entries[off]
            if not self._verify_locked(off, data):
                return None
            parts = [data[pos - off : pos - off + length]]
            got = len(parts[0])
            end = off + len(data)
            for j in range(start + 1, len(self._index)):
                if got >= length:
                    break
                noff = self._index[j]
                if noff != end:
                    break
                ndata = self._entries[noff]
                if not self._verify_locked(noff, ndata):
                    # Serve the verified prefix; the peer re-requests
                    # the rest (discard shrank _index, so stop here).
                    break
                take = min(length - got, len(ndata))
                parts.append(ndata[:take])
                got += take
                end = noff + len(ndata)
            return parts[0] if len(parts) == 1 else b"".join(parts)

    def get(self, pos: int) -> Optional[bytes]:
        """Bytes from ``pos`` to the end of a covering run, or None."""
        with self._lock:
            i = bisect_right(self._index, pos) - 1
            floor = pos - self._max_len
            while i >= 0:
                off = self._index[i]
                if off < floor:
                    break
                data = self._entries.get(off)
                if data is not None and off <= pos < off + len(data):
                    if not self._verify_locked(off, data):
                        return None
                    self._entries.move_to_end(off)
                    self.hits += 1
                    return data[pos - off :] if off != pos else data
                i -= 1
            return None

    def covers(self, pos: int) -> bool:
        with self._lock:
            i = bisect_right(self._index, pos) - 1
            floor = pos - self._max_len
            while i >= 0:
                off = self._index[i]
                if off < floor:
                    break
                data = self._entries.get(off)
                if data is not None and off <= pos < off + len(data):
                    return True
                i -= 1
            return False


# Keyed (host, port, stream, generation): the generation makes a
# re-created stream (writer crash, drop + recreate) land in a *fresh*
# cache instead of being served the previous incarnation's bytes.
# Against an old server that does not report generations the key pins
# generation 0 — shared, but no worse than before.
_SHARED_CACHES: Dict[Tuple[str, int, str, int], _SharedStreamCache] = {}
_SHARED_CACHES_LOCK = threading.Lock()


def _shared_cache_acquire(
    addr: Tuple[str, int], stream: str, gen: int = 0
) -> _SharedStreamCache:
    key = (addr[0], addr[1], stream, int(gen))
    with _SHARED_CACHES_LOCK:
        cache = _SHARED_CACHES.get(key)
        if cache is None:
            cache = _SHARED_CACHES[key] = _SharedStreamCache(gen=int(gen), name=stream)
        cache.refs += 1
        return cache


def _shared_cache_release(addr: Tuple[str, int], stream: str, gen: int = 0) -> bool:
    """Drop one reference; True when the cache was the last and removed."""
    key = (addr[0], addr[1], stream, int(gen))
    with _SHARED_CACHES_LOCK:
        cache = _SHARED_CACHES.get(key)
        if cache is not None:
            cache.refs -= 1
            if cache.refs <= 0:
                del _SHARED_CACHES[key]
                return True
        return False


class _PeerCacheServer:
    """Process-wide ``gb.peer_read`` endpoint over the shared caches.

    Started lazily by the first peer-enabled reader and never stopped
    (an idle server is one parked accept socket on the process-wide
    event loop — no threads).  The handler is registered ``inline``: a
    peer read is a lock + bisect + slice, never blocking, so it runs on
    the loop directly.  The async engine's ``rpc.server`` fault hook
    fires for it like any other op, which is what lets chaos rules
    target ``op=gb.peer_read`` with drop/close/delay.
    """

    _instance: Optional["_PeerCacheServer"] = None
    _instance_lock = threading.Lock()

    def __init__(self) -> None:
        from ..transport.aio import AsyncRpcServer

        self._rpc = AsyncRpcServer("127.0.0.1", 0)
        self._rpc.register(OP_PEER_READ, self._op_peer_read, inline=True)
        self._rpc.start()
        host, port = self._rpc.address
        self.addr = f"{host}:{port}"

    @classmethod
    def get(cls) -> "_PeerCacheServer":
        with cls._instance_lock:
            if cls._instance is None:
                cls._instance = cls()
            return cls._instance

    @staticmethod
    def _op_peer_read(header: Dict[str, Any], _payload: bytes):
        origin = str(header.get("origin", ""))
        name = str(header.get("name", ""))
        gen = int(header.get("gen") or 0)
        offset = int(header.get("offset", 0))
        length = int(header.get("length", 0))
        host, _, port_s = origin.rpartition(":")
        try:
            key = (host, int(port_s), name, gen)
        except ValueError:
            raise RpcError("bad-request", f"malformed origin {origin!r}") from None
        with _SHARED_CACHES_LOCK:
            cache = _SHARED_CACHES.get(key)
        data = cache.peek_range(offset, length) if cache is not None else None
        if not data:
            # Not an error worth retrying elsewhere in the transport:
            # the fetcher treats a miss as a hint gone stale.
            raise RpcError("peer-miss", f"{name}@{offset} not cached here")
        return {"crc": ioutil.crc32(data)}, data


# ---------------------------------------------------------------------------
# RPC mirror
# ---------------------------------------------------------------------------


class GridBufferClient:
    """RPC client for one Grid Buffer server.

    ``monitor``/``peer`` optionally feed every data-plane round trip
    into a :class:`~repro.core.trace.TransferMonitor`, which is what
    lets the read-ahead window size itself from *measured* link
    numbers instead of a guessed constant.
    """

    def __init__(
        self,
        host: str,
        port: int,
        timeout: float = 60.0,
        max_connections: Optional[int] = None,
        monitor: Optional[Any] = None,
        peer: Optional[str] = None,
    ):
        self._addr = (host, port)
        self._timeout = timeout
        self._rpc = RpcClient(host, port, timeout=timeout, max_connections=max_connections)
        self.monitor = monitor
        self.peer = peer or host
        # None = unknown, probed on first vectored use; False pins the
        # per-block fallback after one "unknown-op" from an old server.
        self._vectored: Optional[bool] = None
        # gb.consume_multi is newer than the other vectored ops, so it
        # carries its own capability flag: a server can speak gb.consume
        # but still refuse the batched form.
        self._consume_multi: Optional[bool] = None
        # Dedupe identity for write replay: every write batch carries
        # (token, seq); the service skips a (token, seq) it has already
        # applied, which is what makes gb.write/gb.write_multi safe to
        # retry after a lost *reply*.
        self._writer_token = uuid.uuid4().hex[:12]
        self._seq_lock = threading.Lock()
        self._next_seq = 0
        # Small per-peer RpcClient cache for cooperative-cache fetches;
        # peers answer from RAM, so these run on a short timeout.
        self._peer_rpcs: Dict[str, RpcClient] = {}
        self._peer_rpcs_lock = threading.Lock()

    @property
    def address(self) -> Tuple[str, int]:
        return self._addr

    def _fresh_connection(self, max_connections: int = 1) -> RpcClient:
        return RpcClient(*self._addr, timeout=self._timeout, max_connections=max_connections)

    def _record(self, op: str, nbytes: int, seconds: float) -> None:
        if self.monitor is not None:
            self.monitor.record(self.peer, op, nbytes, seconds)

    def _next_write_seq(self) -> int:
        with self._seq_lock:
            self._next_seq += 1
            return self._next_seq

    # -- capability probe ---------------------------------------------------
    def supports_vectored(self) -> bool:
        """Does the server speak the PR 3 vectored ops?  Probed once."""
        if self._vectored is None:
            try:
                # Any reply other than unknown-op (here: unknown stream)
                # proves the op is dispatched.
                self._rpc.call(OP_CONSUME, {"name": "", "reader_id": "", "ranges": []})
                self._vectored = True
            except RpcError as exc:
                self._vectored = exc.kind != "unknown-op"
        return self._vectored

    def _vectored_refused(self, op: str) -> None:
        self._vectored = False
        _VECTOR_FALLBACKS.labels(op=op).inc()

    # -- service mirror ----------------------------------------------------
    def create_stream(
        self,
        name: str,
        n_readers: int = 1,
        capacity_bytes: Optional[int] = None,
        cache: bool = False,
    ) -> None:
        self._rpc.call(
            OP_CREATE,
            {
                "name": name,
                "n_readers": n_readers,
                "capacity_bytes": capacity_bytes,
                "cache": cache,
            },
        )

    def register_reader(self, name: str, reader_id: str) -> int:
        """Attach a reader; returns the stream generation (0 = unknown).

        An old server's reply has no ``gen`` field — generation 0 then
        keys the shared cache exactly as the pre-generation code did.
        """
        return self.register_reader_ex(name, reader_id)[0]

    def register_reader_ex(
        self,
        name: str,
        reader_id: str,
        peer_hints: Optional[Tuple[str, int]] = None,
    ) -> Tuple[int, Optional[Dict[str, Any]]]:
        """:meth:`register_reader` plus an initial ``cached_at`` hint.

        With ``peer_hints=(own_peer_addr, k)`` the origin also returns
        holders of the stream's opening range, so a reader joining a
        warm broadcast never touches the origin data path at all.
        """
        header: Dict[str, Any] = {"name": name, "reader_id": reader_id}
        if peer_hints is not None:
            header["peer"] = peer_hints[0]
            header["peer_hints"] = int(peer_hints[1])
        reply, _ = self._rpc.call(OP_REGISTER_READER, header)
        gen = reply.get("gen")
        hint = reply.get("cached_at")
        return (
            int(gen) if gen is not None else 0,
            hint if isinstance(hint, dict) else None,
        )

    def write(
        self, name: str, offset: int, data: bytes, timeout: Optional[float] = None
    ) -> Optional[str]:
        """Store one block; returns the server's stall reason, if any.

        The call carries a (token, seq) pair and is retried on
        connection failure — the service dedupes a replayed block.
        """
        t0 = time.perf_counter()
        reply, _ = self._rpc.call(
            OP_WRITE,
            {
                "name": name,
                "offset": offset,
                "timeout": timeout,
                "token": self._writer_token,
                "seq": self._next_write_seq(),
            },
            payload=data,
            retryable=True,
        )
        self._record("write", len(data), time.perf_counter() - t0)
        return reply.get("stall")

    def write_multi(
        self,
        name: str,
        runs: Sequence[Tuple[int, bytes]],
        timeout: Optional[float] = None,
    ) -> Optional[str]:
        """Scatter several blocks in one frame; falls back per block.

        Returns the backpressure verdict from the reply header —
        ``"buffer_full"``/``"slow_reader"`` when the server had to stall
        this batch, ``None`` when it landed cleanly — so the caller's
        coalescer can adapt its batch limit.
        """
        runs = [(offset, data) for offset, data in runs if data]
        if not runs:
            return None
        if len(runs) > 1 and self._vectored is not False:
            header = {
                "name": name,
                "offsets": [offset for offset, _ in runs],
                "sizes": [len(data) for _, data in runs],
                "timeout": timeout,
                "token": self._writer_token,
                "seq": self._next_write_seq(),
            }
            payload = b"".join(data for _, data in runs)
            try:
                t0 = time.perf_counter()
                reply, _ = self._rpc.call(OP_WRITE_MULTI, header, payload, retryable=True)
                self._record("write_multi", len(payload), time.perf_counter() - t0)
                self._vectored = True
                return reply.get("stall")
            except RpcError as exc:
                if exc.kind != "unknown-op":
                    raise
                self._vectored_refused(OP_WRITE_MULTI)
        stall: Optional[str] = None
        for offset, data in runs:
            stall = self.write(name, offset, data, timeout=timeout) or stall
        return stall

    def read(
        self,
        name: str,
        reader_id: str,
        offset: int,
        length: int,
        timeout: Optional[float] = None,
        rpc: Optional[RpcClient] = None,
    ) -> bytes:
        t0 = time.perf_counter()
        _, data = (rpc or self._rpc).call(
            OP_READ,
            {
                "name": name,
                "reader_id": reader_id,
                "offset": offset,
                "length": length,
                "timeout": timeout,
            },
        )
        self._record("read", len(data), time.perf_counter() - t0)
        return data

    def read_window(
        self,
        name: str,
        reader_id: str,
        offset: int,
        budget: int,
        min_bytes: int = 1,
        timeout: Optional[float] = None,
        rpc: Optional[RpcClient] = None,
    ) -> Tuple[bytes, Optional[int]]:
        """Windowed read: ``(data, stream_total_if_known)``.

        One reply carries as many contiguous bytes as the server has
        available at ``offset`` up to ``budget``; against an old server
        this degrades to a plain ``gb.read`` (no total reported).
        """
        data, total, _ = self.read_window_ex(
            name, reader_id, offset, budget, min_bytes=min_bytes, timeout=timeout, rpc=rpc
        )
        return data, total

    def read_window_ex(
        self,
        name: str,
        reader_id: str,
        offset: int,
        budget: int,
        min_bytes: int = 1,
        timeout: Optional[float] = None,
        rpc: Optional[RpcClient] = None,
        peer_hints: Optional[Tuple[str, int]] = None,
    ) -> Tuple[bytes, Optional[int], Optional[Dict[str, Any]]]:
        """:meth:`read_window` plus the server's ``cached_at`` hint.

        ``peer_hints=(own_peer_addr, k)`` asks the origin for up to
        ``k`` peers holding the requested-next ranges (excluding
        ourselves).  The returned hint is ``{"peers": [...], "start":
        int, "end": int}`` or None — always None when either side
        predates the cooperative cache, since old clients never send
        the request field and old servers never attach the reply field.
        """
        if self._vectored is not False:
            header: Dict[str, Any] = {
                "name": name,
                "reader_id": reader_id,
                "offset": offset,
                "budget": budget,
                "min_bytes": min_bytes,
                "timeout": timeout,
            }
            if peer_hints is not None:
                header["peer"] = peer_hints[0]
                header["peer_hints"] = int(peer_hints[1])
            try:
                t0 = time.perf_counter()
                reply, data = (rpc or self._rpc).call(OP_READ_MULTI, header)
                self._record("read_multi", len(data), time.perf_counter() - t0)
                self._vectored = True
                total = reply.get("total")
                hint = reply.get("cached_at")
                return (
                    data,
                    (int(total) if total is not None else None),
                    hint if isinstance(hint, dict) else None,
                )
            except RpcError as exc:
                if exc.kind != "unknown-op":
                    raise
                self._vectored_refused(OP_READ_MULTI)
        return (
            self.read(name, reader_id, offset, budget, timeout=timeout, rpc=rpc),
            None,
            None,
        )

    def peer_read(
        self,
        peer: str,
        name: str,
        gen: int,
        offset: int,
        length: int,
    ) -> bytes:
        """Fetch a cached run from a peer's shared block cache.

        Verifies the reply's crc32 and length before trusting it; any
        mismatch raises so the caller demotes the peer and re-requests
        from the origin — peers accelerate, they never gate correctness.
        Round trips are recorded against the *peer's* address in the
        TransferMonitor, which is what lets the window rank peers by
        observed bandwidth.
        """
        rpc = self._peer_rpc(peer)
        t0 = time.perf_counter()
        reply, data = rpc.call(
            OP_PEER_READ,
            {
                "origin": f"{self._addr[0]}:{self._addr[1]}",
                "name": name,
                "gen": int(gen),
                "offset": int(offset),
                "length": int(length),
            },
        )
        elapsed = time.perf_counter() - t0
        if not data or len(data) > length:
            raise RpcError(
                "peer-bad-length", f"peer {peer} sent {len(data)} bytes for {length}"
            )
        if ioutil.crc32(data) != int(reply.get("crc", -1)):
            raise RpcError("peer-bad-crc", f"checksum mismatch from peer {peer}")
        if self.monitor is not None:
            self.monitor.record(peer, "peer_read", len(data), elapsed)
        return data

    def _peer_rpc(self, peer: str) -> RpcClient:
        with self._peer_rpcs_lock:
            rpc = self._peer_rpcs.get(peer)
            if rpc is None:
                host, _, port_s = peer.rpartition(":")
                rpc = RpcClient(
                    host,
                    int(port_s),
                    timeout=min(self._timeout, _PEER_TIMEOUT),
                    max_connections=2,
                )
                self._peer_rpcs[peer] = rpc
            return rpc

    def consume(
        self, name: str, reader_id: str, ranges: Iterable[Tuple[int, int]]
    ) -> bool:
        """Acknowledge ranges served from a shared cache.

        Returns False when the server predates the vectored ops (the
        caller must then fetch for real instead of acking).
        """
        if self._vectored is False:
            return False
        try:
            self._rpc.call(
                OP_CONSUME,
                {
                    "name": name,
                    "reader_id": reader_id,
                    "ranges": [[int(s), int(e)] for s, e in ranges],
                },
            )
            self._vectored = True
            return True
        except RpcError as exc:
            if exc.kind != "unknown-op":
                raise
            self._vectored_refused(OP_CONSUME)
            return False

    def consume_multi(
        self,
        name: str,
        entries: Sequence[Tuple[str, Sequence[Sequence[int]]]],
        adv: Optional[Dict[str, Any]] = None,
    ) -> bool:
        """Batched :meth:`consume` covering several readers in one frame.

        ``entries`` is a list of ``(reader_id, ranges)`` pairs — the
        shared-cache ack aggregator's flush unit.  ``adv`` piggybacks a
        cooperative-cache holder advertisement (``peer``/``gen``/
        ``holds``/``drops`` keys) on the same frame; an old server
        simply ignores the extra keys, and the per-reader fallback path
        drops the advertisement entirely (old servers keep no holder
        map).  Falls back to per-reader ``gb.consume`` against a server
        that predates the batched op; returns False only when even that
        is unsupported (the caller must then fetch for real instead of
        acking).
        """
        ok, _ = self.consume_multi_ex(name, entries, adv=adv)
        return ok

    def consume_multi_ex(
        self,
        name: str,
        entries: Sequence[Tuple[str, Sequence[Sequence[int]]]],
        adv: Optional[Dict[str, Any]] = None,
        peer_hints: Optional[Tuple[str, int]] = None,
        hint_from: Optional[int] = None,
    ) -> Tuple[bool, Optional[Dict[str, Any]]]:
        """:meth:`consume_multi` plus the server's ``cached_at`` hint.

        A fully peer-served reader never issues an origin read, so the
        ack channel is the only round trip on which its holder map can
        refresh — ``peer_hints=(own_peer_addr, k)`` asks for an updated
        hint on the reply, with the same both-ways-silent codec-skew
        behaviour as :meth:`read_window_ex`.  ``hint_from`` carries the
        reader's true read frontier: acked ranges trail it, and a hint
        computed at the acked frontier points at peers that may not
        hold the leading edge yet.
        """
        entries = [
            (rid, [[int(s), int(e)] for s, e in ranges]) for rid, ranges in entries
        ]
        if not entries and not adv:
            return True, None
        if self._vectored is False:
            return False, None
        if self._consume_multi is not False:
            header: Dict[str, Any] = {
                "name": name,
                "entries": [[rid, ranges] for rid, ranges in entries],
            }
            if adv:
                header.update(adv)
            if peer_hints is not None:
                header["peer"] = peer_hints[0]
                header["peer_hints"] = int(peer_hints[1])
                if hint_from is not None:
                    header["hint_from"] = int(hint_from)
            try:
                reply, _ = self._rpc.call(OP_CONSUME_MULTI, header)
                self._consume_multi = True
                self._vectored = True
                hint = reply.get("cached_at")
                return True, (hint if isinstance(hint, dict) else None)
            except RpcError as exc:
                if exc.kind != "unknown-op":
                    raise
                self._consume_multi = False
                _VECTOR_FALLBACKS.labels(op=OP_CONSUME_MULTI).inc()
        ok = True
        for rid, ranges in entries:
            ok = self.consume(name, rid, [(s, e) for s, e in ranges]) and ok
        return ok, None

    def close_writer(self, name: str) -> int:
        reply, _ = self._rpc.call(OP_CLOSE_WRITER, {"name": name})
        return int(reply["total"])

    def stats(self, name: str) -> Dict[str, Any]:
        reply, _ = self._rpc.call(OP_STATS, {"name": name})
        return dict(reply["stats"])

    def drop_stream(self, name: str) -> None:
        self._rpc.call(OP_DROP, {"name": name})

    def stream_exists(self, name: str) -> bool:
        reply, _ = self._rpc.call(OP_EXISTS, {"name": name})
        return bool(reply["exists"])

    def abort_writer(self, name: str, reason: str = "writer aborted") -> None:
        self._rpc.call(OP_ABORT, {"name": name, "reason": reason})

    def resume_writer(self, name: str) -> int:
        """Clear a failure; returns the offset to resume writing from."""
        reply, _ = self._rpc.call(OP_RESUME, {"name": name})
        return int(reply["offset"])

    def high_water(self, name: str) -> int:
        reply, _ = self._rpc.call(OP_HIGH_WATER, {"name": name})
        return int(reply["offset"])

    # -- file-like adapters ----------------------------------------------------
    def open_writer(
        self,
        name: str,
        n_readers: int = 1,
        capacity_bytes: Optional[int] = None,
        cache: bool = False,
        write_timeout: Optional[float] = None,
        coalesce_bytes: int = 0,
        flush_after: Optional[float] = None,
    ) -> "BufferWriter":
        self.create_stream(name, n_readers=n_readers, capacity_bytes=capacity_bytes, cache=cache)
        return BufferWriter(
            self,
            name,
            write_timeout=write_timeout,
            coalesce_bytes=coalesce_bytes,
            flush_after=flush_after,
        )

    def open_reader(
        self,
        name: str,
        reader_id: Optional[str] = None,
        read_timeout: Optional[float] = None,
        dedicated_connection: bool = True,
        open_timeout: float = 10.0,
        poll_interval: Optional[float] = None,
        read_ahead: bool = False,
        read_ahead_bytes: int = DEFAULT_READ_BUDGET,
        read_ahead_depth: int = 4,
        shared_cache: bool = False,
        peer_cache: bool = False,
    ) -> "BufferReader":
        """Attach a reader, waiting for the stream to exist.

        A reader may open before the writer has created the stream (the
        paper's FM blocks the legacy OPEN until matched); poll until the
        stream appears or ``open_timeout`` elapses.

        ``peer_cache=True`` joins the cluster-wide cooperative cache:
        the reader advertises its shared block cache to the origin,
        serves ``gb.peer_read`` for other readers, and redirects its
        own fetches to hinted peers when the origin says one holds the
        bytes.  Implies ``shared_cache`` (the shared cache *is* the
        peer-served store) and ``read_ahead`` (the window owns the peer
        fetch machinery); silently disabled against an old server.
        """
        rid = reader_id or f"reader-{uuid.uuid4().hex[:8]}"
        interval = _open_poll_interval() if poll_interval is None else poll_interval
        deadline = time.monotonic() + open_timeout
        while not self.stream_exists(name):
            if time.monotonic() > deadline:
                raise TimeoutError(f"stream {name!r} never appeared")
            time.sleep(interval)
        if peer_cache and not self.supports_vectored():
            peer_cache = False  # old server: no holder map, no hints
        if peer_cache:
            shared_cache = True
            read_ahead = True
        if shared_cache and not self.supports_vectored():
            shared_cache = False  # old server: acks impossible, fetch for real
        peer_addr = _PeerCacheServer.get().addr if peer_cache else None
        gen, hint = self.register_reader_ex(
            name,
            rid,
            peer_hints=(peer_addr, _HINT_K) if peer_addr is not None else None,
        )
        rpc = self._fresh_connection() if dedicated_connection or read_ahead else None
        return BufferReader(
            self,
            name,
            rid,
            read_timeout=read_timeout,
            rpc=rpc,
            read_ahead=read_ahead,
            read_ahead_bytes=read_ahead_bytes,
            read_ahead_depth=read_ahead_depth,
            shared_cache=shared_cache,
            peer_cache=peer_cache,
            gen=gen,
            initial_hint=hint,
        )

    def close(self) -> None:
        self._rpc.close()
        with self._peer_rpcs_lock:
            peer_rpcs = list(self._peer_rpcs.values())
            self._peer_rpcs.clear()
        for rpc in peer_rpcs:
            rpc.close()

    def __enter__(self) -> "GridBufferClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ---------------------------------------------------------------------------
# Writer side
# ---------------------------------------------------------------------------


class _RunBatcher:
    """Multi-run write-behind buffer flushed as one vectored RPC.

    Contiguous writes extend the active run; a scattered write opens a
    new run instead of forcing a flush (the vectored ``gb.write_multi``
    carries all runs in one frame).  The batch is pushed when it
    reaches ``limit`` bytes, on an explicit flush, or by the owning
    writer's deadline thread.
    """

    #: Floor for backpressure-driven limit shrinking.
    MIN_LIMIT = 4096

    def __init__(self, flush_fn, limit: int):
        if limit < 1:
            raise ValueError("limit must be >= 1")
        self._flush_fn = flush_fn  # callable(list[(offset, bytes)])
        self._limit = limit
        self._configured = limit
        self._runs: List[List[Any]] = []  # [start, bytearray]
        self._bytes = 0
        self.flushes = 0           # batch RPCs issued
        self.writes_coalesced = 0  # WRITE calls absorbed without an RPC

    @property
    def pending_bytes(self) -> int:
        return self._bytes

    @property
    def limit(self) -> int:
        return self._limit

    def adapt(self, stall: Optional[str]) -> None:
        """Tune the batch limit from the server's backpressure verdict.

        ``buffer_full`` halves the limit — a smaller batch fits the free
        headroom instead of stalling (and eventually timing out) against
        capacity.  A clean flush doubles it back toward the configured
        size.  ``slow_reader`` holds steady: the reader is the
        bottleneck, so batch size is neither the problem nor the fix.
        """
        if stall == "buffer_full":
            self._limit = max(self.MIN_LIMIT, self._limit // 2)
        elif stall is None and self._limit < self._configured:
            self._limit = min(self._configured, self._limit * 2)

    def discard(self) -> None:
        """Drop pending runs without flushing (writer abort path)."""
        self._runs = []
        self._bytes = 0

    def write(self, offset: int, data: bytes) -> None:
        if not data:
            return
        if self._runs and offset == self._runs[-1][0] + len(self._runs[-1][1]):
            self._runs[-1][1] += data
            self.writes_coalesced += 1
        else:
            self._runs.append([offset, bytearray(data)])
        self._bytes += len(data)
        if self._bytes >= self._limit:
            self.flush()

    def flush(self) -> None:
        if not self._runs:
            return
        runs = [(start, bytes(buf)) for start, buf in self._runs]
        self._runs = []
        self._bytes = 0
        self._flush_fn(runs)
        self.flushes += 1


class BufferWriter(io.RawIOBase):
    """File-like writer feeding a Grid Buffer stream.

    With ``coalesce_bytes > 0`` writes are buffered locally and pushed
    as *batched vectored RPCs*: contiguous runs merge, scattered runs
    ride the same ``gb.write_multi`` frame.  Coalescing is safe by
    default because a background deadline thread bounds how long bytes
    stay local (``flush_after`` seconds, default from
    ``REPRO_BUFFER_FLUSH_DEADLINE``, 20 ms) — a downstream blocking
    reader sees new data within the deadline even mid-run, which keeps
    tightly pipelined streams tight.  ``flush_after=0`` disables the
    deadline (flush only on size/seek/flush/close).
    """

    def __init__(
        self,
        client: GridBufferClient,
        name: str,
        write_timeout: Optional[float] = None,
        coalesce_bytes: int = 0,
        flush_after: Optional[float] = None,
    ):
        super().__init__()
        self._client = client
        self.name = name
        self._pos = 0
        self._timeout = write_timeout
        self._closed_writer = False
        self._lock = threading.Lock()
        self._flush_cv = threading.Condition(self._lock)
        self._m_write_rpcs = _WRITE_RPCS.labels(stream=name)
        self._m_deadline_flushes = _DEADLINE_FLUSHES.labels(stream=name)
        self._coalescer = (
            _RunBatcher(self._push_runs, coalesce_bytes) if coalesce_bytes > 0 else None
        )
        self._flush_after = (
            _default_flush_deadline() if flush_after is None else max(0.0, flush_after)
        )
        self._pending_since: Optional[float] = None
        self._deadline_thread: Optional[threading.Thread] = None
        # Deadline flushes issue write RPCs from a background thread;
        # adopt the opener's span context so those rpc.client spans
        # still join the workflow trace.
        self._trace_ctx = obs.current_context()
        if self._coalescer is not None and self._flush_after > 0:
            self._deadline_thread = threading.Thread(
                target=self._deadline_loop, name=f"gb-flush:{name}", daemon=True
            )
            self._deadline_thread.start()

    def _push_runs(self, runs: List[Tuple[int, bytes]]) -> None:
        stall = self._client.write_multi(self.name, runs, timeout=self._timeout)
        self._m_write_rpcs.inc()
        if self._coalescer is not None:
            self._coalescer.adapt(stall)

    def _deadline_loop(self) -> None:
        with obs.attach(self._trace_ctx):
            self._deadline_loop_attached()

    def _deadline_loop_attached(self) -> None:
        with self._flush_cv:
            while not self._closed_writer:
                if self._coalescer is None or self._coalescer.pending_bytes == 0:
                    self._pending_since = None
                    self._flush_cv.wait()
                    continue
                assert self._pending_since is not None
                age = time.monotonic() - self._pending_since
                if age >= self._flush_after:
                    self._coalescer.flush()
                    self._pending_since = None
                    self._m_deadline_flushes.inc()
                else:
                    self._flush_cv.wait(self._flush_after - age)

    @property
    def rpc_writes(self) -> int:
        """WRITE RPCs actually issued (== writes unless coalescing)."""
        return self._coalescer.flushes if self._coalescer is not None else self._raw_writes

    _raw_writes = 0

    def writable(self) -> bool:
        return True

    def write(self, data) -> int:  # type: ignore[override]
        data = bytes(data)
        with self._lock:
            if self._closed_writer:
                raise ValueError("write to closed BufferWriter")
            if data:
                if self._coalescer is not None:
                    had_pending = self._coalescer.pending_bytes > 0
                    self._coalescer.write(self._pos, data)
                    if self._coalescer.pending_bytes == 0:
                        self._pending_since = None
                    elif not had_pending or self._pending_since is None:
                        self._pending_since = time.monotonic()
                        self._flush_cv.notify_all()
                else:
                    self._client.write(self.name, self._pos, data, timeout=self._timeout)
                    self._raw_writes += 1
                    self._m_write_rpcs.inc()
                self._pos += len(data)
        return len(data)

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        with self._lock:
            # Seeks no longer force a flush: a scattered write simply
            # opens a new run in the same vectored batch.
            if whence == os.SEEK_SET:
                self._pos = offset
            elif whence == os.SEEK_CUR:
                self._pos += offset
            else:
                raise OSError("SEEK_END unsupported on a stream writer")
            if self._pos < 0:
                raise ValueError("negative seek position")
            return self._pos

    def seekable(self) -> bool:
        return True

    def tell(self) -> int:
        return self._pos

    def flush(self) -> None:  # type: ignore[override]
        with self._lock:
            if self._coalescer is not None and not self._closed_writer:
                self._coalescer.flush()
                self._pending_since = None
        super().flush()

    def abort(self, reason: str = "writer aborted") -> None:
        """Fail the stream instead of finalising it.

        Unlike :meth:`close` no EOF is written: pending coalesced bytes
        are dropped and the stream is marked failed server-side, so
        blocking readers raise ``StreamFailed`` instead of hanging
        forever — or, worse, seeing a truncated stream that looks
        complete.  Idempotent; a later :meth:`close` is a no-op.
        """
        join_me = None
        with self._lock:
            if self._closed_writer:
                return
            self._closed_writer = True
            join_me = self._deadline_thread
            self._deadline_thread = None
            if self._coalescer is not None:
                self._coalescer.discard()
            self._flush_cv.notify_all()
        _WRITER_ABORTS.labels(stream=self.name).inc()
        try:
            self._client.abort_writer(self.name, reason)
        except (OSError, RpcError) as exc:
            # The abort signal is best-effort — the server may be the
            # very thing that died; readers then surface their own
            # connection errors instead of a clean StreamFailed.
            obs.event("gb.abort_failed", stream=self.name, error=str(exc))
        if join_me is not None:
            join_me.join(timeout=2.0)
        super().close()

    def close(self) -> None:
        join_me = None
        with self._lock:
            if not self._closed_writer:
                self._closed_writer = True
                join_me = self._deadline_thread
                self._deadline_thread = None
                try:
                    if self._coalescer is not None:
                        self._coalescer.flush()
                finally:
                    self._flush_cv.notify_all()
                    self._client.close_writer(self.name)
        if join_me is not None:
            join_me.join(timeout=2.0)
        super().close()


# ---------------------------------------------------------------------------
# Reader side
# ---------------------------------------------------------------------------


class _ReadAheadWindow:
    """Up to N windowed reads in flight on a pooled connection set.

    Generalises the PR 1 double buffer (exactly one request in flight)
    into an adaptive window: worker threads keep ``depth`` chunk-grid
    requests outstanding ahead of the consumer.  Depth starts at 1,
    doubles every time the pipeline actually serves a read (up to
    ``max_depth``), and collapses on a seek; when the owning client
    carries measured link estimates, the bandwidth-delay product picks
    the target depth directly — the paper's latency-crossover argument
    applied to the window size.

    The window owns one pooled :class:`RpcClient` whose width equals
    ``max_depth``, so its blocked requests can never head-of-line
    block the reader's demand connection.

    The chunk size adapts too: with measured link estimates the window
    re-tiers its request size from observed bandwidth (small requests
    keep time-to-first-byte low on a slow link; big ones amortise
    per-frame cost on a fast one).  Re-tiering happens only while
    nothing is queued or in flight, so an outstanding span is never
    partially duplicated under a new grid.
    """

    #: (bandwidth ceiling in bytes/s, chunk size) — first match wins.
    CHUNK_TIERS = (
        (1 << 20, 16 * 1024),     # < 1 MB/s: keep replies snappy
        (8 << 20, 64 * 1024),     # < 8 MB/s: the historical default
        (64 << 20, 256 * 1024),   # < 64 MB/s
    )
    #: Chunk size above the top tier.
    MAX_CHUNK = 1024 * 1024

    def __init__(
        self,
        client: GridBufferClient,
        name: str,
        reader_id: str,
        timeout: Optional[float],
        chunk_bytes: int,
        max_depth: int,
        shared: Optional[_SharedStreamCache] = None,
        peer_addr: Optional[str] = None,
        gen: int = 0,
        initial_hint: Optional[Dict[str, Any]] = None,
    ):
        self._client = client
        self._name = name
        self._reader_id = reader_id
        self._timeout = timeout
        self._chunk = max(1, chunk_bytes)
        self._max_depth = max(1, max_depth)
        self._shared = shared
        # Cooperative cache state: our own peer address (None = peer
        # fetch disabled), the stream generation peer reads are keyed
        # by, and the origin's latest ``cached_at`` hint.  Demotions are
        # per-window permanent — a peer that lied once is not retried.
        self._peer_addr = peer_addr
        self._gen = int(gen)
        self._hint_peers: List[str] = []
        self._hint_start = 0
        self._hint_end = 0
        self._demoted: set = set()
        self._misses: Dict[str, int] = {}
        self._peer_rr = 0
        self._frontier = 0
        self.peer_hits = 0
        self._m_peer_hits = _PEER_HITS.labels(stream=name)
        self._m_peer_bytes = _PEER_FETCH_BYTES.labels(stream=name)
        self._rpc = client._fresh_connection(max_connections=self._max_depth)
        self._cv = threading.Condition()
        self._queue: List[int] = []                  # wanted offsets, ascending
        # In-flight requests: offset -> expected span.  Origin fetches
        # span one chunk; peer fetches may span several, and tracking
        # the width keeps schedule() from double-requesting bytes a
        # wide peer fetch is already carrying.
        self._inflight: Dict[int, int] = {}
        self._results: Dict[int, bytes] = {}
        self._errors: Dict[int, BaseException] = {}
        self._eof_at: Optional[int] = None
        self._depth = 1
        self._stopped = False
        # Read-ahead RPCs issued by worker threads should parent under
        # whatever span opened the reader (the task, usually) — capture
        # the constructing thread's context for re-attachment.
        self._trace_ctx = obs.current_context()
        if initial_hint is not None:
            self._store_hint(initial_hint)
        self._threads = [
            threading.Thread(target=self._run, name=f"gb-window:{name}#{i}", daemon=True)
            for i in range(self._max_depth)
        ]
        for t in self._threads:
            t.start()

    # -- owner-side API ----------------------------------------------------
    def _target_chunk(self) -> int:
        """Chunk size for the link's observed bandwidth tier."""
        monitor = self._client.monitor
        if monitor is None:
            return self._chunk
        bandwidth = monitor.bandwidth(self._client.peer)
        if not bandwidth:
            return self._chunk
        for ceiling, chunk in self.CHUNK_TIERS:
            if bandwidth < ceiling:
                return chunk
        return self.MAX_CHUNK

    def _target_depth(self) -> int:
        monitor = self._client.monitor
        if monitor is not None:
            latency = monitor.latency(self._client.peer)
            bandwidth = monitor.bandwidth(self._client.peer)
            if latency and bandwidth:
                # Keep one round trip's worth of bytes in flight.
                bdp = 2.0 * latency * bandwidth
                return max(1, min(self._max_depth, round(bdp / self._chunk + 0.5)))
        return self._depth

    def note_hit(self) -> None:
        with self._cv:
            self._depth = min(self._depth * 2, self._max_depth)

    def _result_covering(self, pos: int) -> Optional[int]:
        for off, data in self._results.items():
            if off <= pos < off + len(data):
                return off
        return None

    def _inflight_covering(self, pos: int) -> bool:
        return any(off <= pos < off + span for off, span in self._inflight.items())

    def schedule(self, frontier: int) -> None:
        """Keep the window full of requests at/after ``frontier``."""
        with self._cv:
            if self._stopped:
                return
            self._frontier = frontier
            if not (self._queue or self._inflight or self._results or self._errors):
                # Idle gap: safe to re-tier the chunk grid — nothing
                # outstanding can straddle the old/new boundaries.
                self._chunk = max(1, self._target_chunk())
            # Drop state the consumer has moved past.  A result is
            # stale only when *fully* below the frontier: its bytes are
            # consumed server-side, so dropping an undelivered tail
            # would make them unreachable on a cache-less stream.
            for off in [
                o for o, d in self._results.items() if o + len(d) <= frontier
            ]:
                del self._results[off]
            for off in [o for o in self._errors if o < frontier]:
                del self._errors[off]
            self._queue = [o for o in self._queue if o >= frontier]
            target = self._target_depth()
            tracked = set(self._queue) | set(self._inflight) | set(self._results) | set(self._errors)
            outstanding = len([o for o in tracked if o >= frontier])
            candidate = frontier
            while outstanding < target:
                if self._eof_at is not None and candidate >= self._eof_at:
                    break
                if (
                    candidate not in tracked
                    and self._result_covering(candidate) is None
                    and not self._inflight_covering(candidate)
                    and not (self._shared is not None and self._shared.covers(candidate))
                ):
                    insort(self._queue, candidate)
                    tracked.add(candidate)
                    outstanding += 1
                candidate += self._chunk
            if self._queue:
                self._cv.notify_all()

    def take(self, pos: int) -> Optional[bytes]:
        """Pipelined data covering ``pos``, waiting while in flight.

        ``b""`` means EOF at/after ``pos``; None means the caller must
        demand-read.  A request *covering* ``pos`` (its span may start
        earlier when a shared-cache hit advanced the consumer mid-run)
        is served from ``pos`` onward.  An error recorded at exactly
        ``pos`` re-raises here; other errors are dropped during
        scheduling (the demand path surfaces persistent failures).
        """
        with self._cv:
            while True:
                if pos in self._errors:
                    raise self._errors.pop(pos)
                off = self._result_covering(pos)
                if off is not None:
                    data = self._results.pop(off)
                    return data[pos - off :] if off != pos else data
                if self._eof_at is not None and pos >= self._eof_at:
                    return b""
                # A queued/in-flight request whose span may reach pos:
                # wait for it rather than racing a demand read against
                # bytes it is about to consume.
                if self._inflight_covering(pos) or any(
                    off <= pos < off + self._chunk for off in self._queue
                ):
                    self._cv.wait(timeout=0.05)
                    continue
                return None

    def next_boundary(self, pos: int) -> Optional[int]:
        """Smallest tracked offset beyond ``pos`` (demand-read clamp)."""
        with self._cv:
            tracked = set(self._queue) | set(self._inflight) | set(self._results) | set(self._errors)
            ahead = [o for o in tracked if o > pos]
            return min(ahead) if ahead else None

    def discard(self) -> None:
        """A seek invalidated the window: drop queued work, collapse."""
        with self._cv:
            self._queue.clear()
            self._results.clear()
            self._errors.clear()
            self._depth = 1

    def eof_total(self) -> Optional[int]:
        with self._cv:
            return self._eof_at

    def rebind(self, shared: Optional[_SharedStreamCache], gen: int) -> None:
        """Reconnect found a new stream incarnation: swap cache and
        generation, drop window state and hints from the dead one."""
        with self._cv:
            self._shared = shared
            self._gen = int(gen)
            self._hint_peers = []
            self._hint_start = self._hint_end = 0
            self._queue.clear()
            self._results.clear()
            self._errors.clear()

    def close(self) -> None:
        with self._cv:
            self._stopped = True
            self._queue.clear()
            self._cv.notify_all()
        # Hard-close the pooled sockets: calls parked in a server-side
        # blocking read fail immediately instead of waiting out their
        # timeout, so join() below always completes promptly.
        self._rpc.close_all()
        for t in self._threads:
            t.join(timeout=2.0)
        self._rpc.close()

    # -- workers -----------------------------------------------------------
    def _run(self) -> None:
        # Worker threads adopt the owner's span context so the rpc.client
        # spans of read-ahead fetches join the workflow trace.
        with obs.attach(self._trace_ctx):
            self._run_attached()

    def _run_attached(self) -> None:
        while True:
            with self._cv:
                while not self._queue and not self._stopped:
                    self._cv.wait()
                if self._stopped:
                    return
                offset = self._queue.pop(0)
                # A wide peer fetch registered after this offset was
                # queued may already carry it — skip; the consumer
                # waits on that in-flight span, not this queue entry.
                if self._inflight_covering(offset) or self._result_covering(offset) is not None:
                    self._cv.notify_all()
                    continue
                span = self._chunk
                if self._peer_addr and self._hint_start <= offset < self._hint_end:
                    # Peer fetches batch several chunks: peers serve
                    # from RAM, so per-request overhead — not link
                    # bandwidth — is what bounds a popular holder.
                    # Registering the wide span under the lock is what
                    # keeps sibling workers off the covered bytes.
                    span = min(self._chunk * _PEER_SPAN_CHUNKS, self._hint_end - offset)
                self._inflight[offset] = span
                self._cv.notify_all()
            total: Optional[int] = None
            data = self._fetch_from_peer(offset, span) if self._peer_addr else None
            from_peer = data is not None
            if data is not None:
                # Peer-served bytes never touched the origin, so ack
                # them explicitly — delete-on-read GC and per-reader
                # lag gauges must stay exact either way.
                self.peer_hits += 1
                self._m_peer_hits.inc()
                self._m_peer_bytes.inc(len(data))
                if self._shared is not None:
                    entries = self._shared.ack(
                        self._reader_id,
                        offset,
                        offset + len(data),
                        BufferReader.ACK_FLUSH_BYTES,
                    )
                    if entries:
                        try:
                            _, hint = self._client.consume_multi_ex(
                                self._name,
                                entries,
                                peer_hints=(self._peer_addr, _HINT_K),
                                hint_from=offset + len(data),
                            )
                        except (OSError, RpcError):  # fault-ok: ack retried on flush
                            pass
                        else:
                            if hint is not None:
                                self._store_hint(hint)
            else:
                try:
                    # Budget the whole registered span: sibling queue
                    # entries it covers were skipped at dequeue, so the
                    # origin fallback must deliver those bytes too.
                    data, total, hint = self._client.read_window_ex(
                        self._name,
                        self._reader_id,
                        offset,
                        span,
                        timeout=self._timeout,
                        rpc=self._rpc,
                        peer_hints=(
                            (self._peer_addr, _HINT_K) if self._peer_addr else None
                        ),
                    )
                except BaseException as exc:  # noqa: BLE001 - surfaced on take()
                    # A shared-cache hit can ack bytes this request was
                    # racing to fetch; the server then rejects the re-read
                    # of consumed bytes.  That is benign — the consumer got
                    # the bytes locally — so drop the error when the cache
                    # covers the offset.
                    benign = self._shared is not None and self._shared.covers(offset)
                    with self._cv:
                        self._inflight.pop(offset, None)
                        if not self._stopped and not benign:
                            self._errors[offset] = exc
                        self._cv.notify_all()
                    continue
                if hint is not None:
                    self._store_hint(hint)
            if self._shared is not None and data:
                self._shared.put(offset, data, advertise=not from_peer)
                self._flush_adv()
            with self._cv:
                self._inflight.pop(offset, None)
                if not self._stopped:
                    self._results[offset] = data
                    if data:
                        # A wide peer fetch may cover offsets queued
                        # before it landed — drop them, they're served.
                        end = offset + len(data)
                        self._queue = [o for o in self._queue if not (offset <= o < end)]
                    if total is not None:
                        self._eof_at = total if self._eof_at is None else min(self._eof_at, total)
                    elif not data:
                        self._eof_at = offset if self._eof_at is None else min(self._eof_at, offset)
                self._cv.notify_all()

    # -- cooperative-cache peer fetch --------------------------------------
    def _fetch_from_peer(self, offset: int, length: Optional[int] = None) -> Optional[bytes]:
        """Try hinted peers for ``offset``; None sends us to the origin.

        Every failure mode folds into "skip this peer and fall back":
        a miss (stale hint) is a strike, demoting after
        ``_MISS_STRIKES``; errors, timeouts and checksum/length
        mismatches demote immediately.  Correctness never depends on a
        peer answering — the origin always can.
        """
        for peer in self._peer_candidates(offset):
            try:
                data = self._client.peer_read(
                    peer, self._name, self._gen, offset, length or self._chunk
                )
            except RpcError as exc:
                if exc.kind == "peer-miss":
                    self._strike(peer)
                elif exc.kind in ("peer-bad-crc", "peer-bad-length"):
                    ioutil.count_integrity_error("gb.peer", "demote")
                    self._demote(peer, "checksum")
                else:
                    self._demote(peer, "error")
            except TimeoutError:
                self._demote(peer, "timeout")
            except OSError:
                self._demote(peer, "error")
            else:
                if data:
                    return data
                self._strike(peer)
        return None

    def _peer_candidates(self, offset: int) -> List[str]:
        """Hinted peers expected to hold ``offset``, best first.

        Range-gated by the hint's span, demotion-filtered, then sorted
        by observed bandwidth with *unknown* peers first — an untried
        peer gets explored before we settle on a known-good one.  The
        start position rotates fetch to fetch: on a broadcast every
        hinted holder has the bytes, and rotating spreads concurrent
        fetchers across holders instead of herding them all at the
        single best-measured peer.  Failures still walk the remaining
        candidates in score order.
        """
        with self._cv:
            if not (self._hint_start <= offset < self._hint_end):
                return []
            peers = [
                p
                for p in self._hint_peers
                if p not in self._demoted and p != self._peer_addr
            ]
            self._peer_rr += 1
            rot = self._peer_rr
        monitor = self._client.monitor
        if monitor is not None and len(peers) > 1:
            peers.sort(key=lambda p: -(monitor.bandwidth(p) or float("inf")))
        if len(peers) > 1:
            rot %= len(peers)
            peers = peers[rot:] + peers[:rot]
        return peers

    def _store_hint(self, hint: Dict[str, Any]) -> None:
        peers = hint.get("peers")
        if not isinstance(peers, (list, tuple)):
            return
        total = hint.get("total")
        with self._cv:
            self._hint_peers = [str(p) for p in peers]
            self._hint_start = int(hint.get("start", 0))
            self._hint_end = int(hint.get("end", 0))
            if total is not None:
                # The origin told us the stream total along with the
                # hint — a fully peer-served reader learns EOF without
                # ever probing the origin for an empty read.
                t = int(total)
                self._eof_at = t if self._eof_at is None else min(self._eof_at, t)
        if total is not None and self._shared is not None:
            self._shared.note_eof(int(total))

    def _demote(self, peer: str, reason: str) -> None:
        with self._cv:
            if peer in self._demoted:
                return
            self._demoted.add(peer)
            self._misses.pop(peer, None)
        _PEER_DEMOTIONS.labels(reason=reason).inc()
        obs.event("gb.peer_demoted", stream=self._name, peer=peer, reason=reason)

    def _strike(self, peer: str) -> None:
        with self._cv:
            strikes = self._misses.get(peer, 0) + 1
            self._misses[peer] = strikes
            if strikes < _MISS_STRIKES:
                return
        self._demote(peer, "miss")

    def _flush_adv(self) -> None:
        """Piggyback any due holder advertisement on an empty consume."""
        shared = self._shared
        if shared is None or self._peer_addr is None:
            return
        pending = shared.take_adv()
        if pending is None:
            return
        try:
            _, hint = self._client.consume_multi_ex(
                self._name,
                [],
                adv={
                    "peer": self._peer_addr,
                    "gen": self._gen,
                    "holds": pending[0],
                    "drops": pending[1],
                },
                peer_hints=(self._peer_addr, _HINT_K),
                hint_from=self._frontier,
            )
        except (OSError, RpcError):  # fault-ok: a lost advertisement only costs hints
            pass
        else:
            if hint is not None:
                self._store_hint(hint)


class BufferReader(ReadIntoFromRead, io.RawIOBase):
    """File-like reader over a Grid Buffer stream.

    Sequential reads drain the hash table; re-reads and backwards
    seeks hit the server-side cache file — exactly the DARLAM pattern
    in Section 5.3.  With ``read_ahead=True`` an adaptive
    :class:`_ReadAheadWindow` keeps up to ``read_ahead_depth`` windowed
    requests in flight while the current chunk is consumed.  With
    ``shared_cache=True`` co-located readers of the same stream serve
    each other's fetches from a per-process cache and acknowledge
    consumption with batched vectored ``gb.consume`` calls.
    """

    #: Acked-but-unsent shared-cache ranges are flushed past this size.
    ACK_FLUSH_BYTES = 1 * 1024 * 1024

    def __init__(
        self,
        client: GridBufferClient,
        name: str,
        reader_id: str,
        read_timeout: Optional[float] = None,
        rpc: Optional[RpcClient] = None,
        read_ahead: bool = False,
        read_ahead_bytes: int = DEFAULT_READ_BUDGET,
        read_ahead_depth: int = 4,
        shared_cache: bool = False,
        peer_cache: bool = False,
        gen: int = 0,
        initial_hint: Optional[Dict[str, Any]] = None,
    ):
        super().__init__()
        self._client = client
        self.name = name
        self.reader_id = reader_id
        self._pos = 0
        self._timeout = read_timeout
        self._rpc = rpc
        self._ra_bytes = max(1, read_ahead_bytes)
        self._ra_buf = b""          # data already fetched ahead, at _pos
        self._at_eof = False
        self.readahead_hits = 0     # reads served (fully) from the pipeline
        self.shared_hits = 0        # reads served from the shared cache
        self._m_ra_hits = _READAHEAD_HITS.labels(stream=name)
        self._m_shared_hits = _SHARED_HITS.labels(stream=name)
        self._gen = int(gen)
        self._peer_addr: Optional[str] = None
        self._shared: Optional[_SharedStreamCache] = None
        if shared_cache:
            self._shared = _shared_cache_acquire(client.address, name, self._gen)
        if peer_cache and self._shared is not None:
            # Joining the cooperative cache: start (or reuse) this
            # process's peer endpoint and expose the shared cache on it.
            self._peer_addr = _PeerCacheServer.get().addr
            self._shared.peer_addr = self._peer_addr
        self._ra: Optional[_ReadAheadWindow] = None
        if read_ahead:
            self._ra = _ReadAheadWindow(
                client,
                name,
                reader_id,
                read_timeout,
                read_ahead_bytes,
                read_ahead_depth,
                shared=self._shared,
                peer_addr=self._peer_addr,
                gen=self._gen,
                initial_hint=initial_hint if self._peer_addr is not None else None,
            )

    def readable(self) -> bool:
        return True

    @property
    def peer_hits(self) -> int:
        """Read-ahead fetches served by cooperative-cache peers."""
        return self._ra.peer_hits if self._ra is not None else 0

    # -- shared-cache ack batching -----------------------------------------
    def _ack(self, start: int, end: int) -> None:
        """Queue a shared-cache-served range for acknowledgement.

        Acks from every co-located reader of this stream pool in the
        shared cache's aggregator; once the aggregate crosses
        ``ACK_FLUSH_BYTES`` the whole group's backlog goes out as one
        ``gb.consume_multi`` frame — one round trip and one server-side
        GC pass instead of one per reader.
        """
        if end <= start or self._shared is None:
            return
        entries = self._shared.ack(self.reader_id, start, end, self.ACK_FLUSH_BYTES)
        if entries:
            self._send_acks(entries)

    def _flush_acks(self) -> None:
        if self._shared is None:
            return
        entries = self._shared.drain_acks()
        if entries:
            self._send_acks(entries)

    def _send_acks(self, entries: List[Tuple[str, List[List[int]]]]) -> None:
        adv = None
        if self._peer_addr is not None and self._shared is not None:
            # The frame is going out anyway — piggyback whatever holder
            # advertisement has accumulated, due or not.
            pending = self._shared.take_adv(force=True)
            if pending is not None:
                adv = {
                    "peer": self._peer_addr,
                    "gen": self._gen,
                    "holds": pending[0],
                    "drops": pending[1],
                }
        try:
            _, hint = self._client.consume_multi_ex(
                self.name,
                entries,
                adv=adv,
                peer_hints=(
                    (self._peer_addr, _HINT_K) if self._peer_addr is not None else None
                ),
                hint_from=self._pos,
            )
        except (OSError, RpcError):  # fault-ok: a lost ack delays GC, never corrupts
            pass
        else:
            if hint is not None and self._ra is not None:
                self._ra._store_hint(hint)

    def _maybe_advertise(self) -> None:
        """Flush a due holder advertisement after a demand-path fetch."""
        self.flush_advertisements(force=False)

    def flush_advertisements(self, force: bool = True) -> None:
        """Send pending holder advertisements to the origin now.

        Normally advertisements ride lazily on consume traffic; a
        holder that has finished reading (and so stops generating
        traffic) calls this to make its final cached ranges visible to
        peers immediately.
        """
        if self._peer_addr is None or self._shared is None:
            return
        pending = self._shared.take_adv(force=force)
        if pending is None:
            return
        try:
            self._client.consume_multi(
                self.name,
                [],
                adv={
                    "peer": self._peer_addr,
                    "gen": self._gen,
                    "holds": pending[0],
                    "drops": pending[1],
                },
            )
        except (OSError, RpcError):  # fault-ok: a lost advertisement only costs hints
            pass

    # -- read path ---------------------------------------------------------
    def _read_direct(self, size: int) -> bytes:
        # A peer-enabled reader tries the cooperative cache even on the
        # demand path: hinted, range-gated, ack-on-success, and falling
        # through to the origin on any trouble — same rules as the
        # window, so a reader that outruns its prefetch still relieves
        # the origin.
        if self._ra is not None and self._ra._peer_addr is not None:
            data = self._ra._fetch_from_peer(self._pos, size)
            if data is not None:
                self._ra.peer_hits += 1
                self._ra._m_peer_hits.inc()
                self._ra._m_peer_bytes.inc(len(data))
                self._ack(self._pos, self._pos + len(data))
                return data
        try:
            return self._origin_direct(size)
        except (OSError, RpcError) as exc:
            self._recover_connection(exc)
            return self._origin_direct(size)

    def _origin_direct(self, size: int) -> bytes:
        if self._ra is not None and self._ra._peer_addr is not None:
            # Ask for hints on demand reads too: the reply both serves
            # these bytes and points the window at peers for the next.
            data, total, hint = self._client.read_window_ex(
                self.name,
                self.reader_id,
                self._pos,
                size,
                timeout=self._timeout,
                rpc=self._rpc,
                peer_hints=(self._ra._peer_addr, _HINT_K),
            )
            if hint is not None:
                self._ra._store_hint(hint)
            if total is not None and self._shared is not None:
                self._shared.note_eof(total)
            return data
        return self._client.read(
            self.name, self.reader_id, self._pos, size, timeout=self._timeout, rpc=self._rpc
        )

    def _recover_connection(self, exc: BaseException) -> None:
        """Rebuild the demand connection and re-register after a failure.

        Fires when the transport's own retries are exhausted (e.g. the
        Grid Buffer front end restarted) or the service forgot this
        reader.  Registration is idempotent server-side and the resume
        position is ``self._pos`` — exact, because the ``gb.consume``
        ack bookkeeping tracks consumption per byte range, not per call.
        Non-recoverable errors (stream failed, stalled, EOF races)
        re-raise unchanged.
        """
        recoverable = isinstance(exc, OSError) and not isinstance(exc, TimeoutError)
        if isinstance(exc, RpcError):
            recoverable = exc.kind == "grid-buffer" and "not registered" in exc.message
        if not recoverable:
            raise exc
        _READER_RESUMES.labels(stream=self.name).inc()
        obs.event(
            "gb.reader_resume",
            stream=self.name,
            reader=self.reader_id,
            pos=self._pos,
            error=str(exc),
        )
        if self._rpc is not None:
            try:
                self._rpc.close_all()
            except OSError:  # fault-ok: old connection already dead
                pass
            self._rpc = self._client._fresh_connection()
        gen = self._client.register_reader(self.name, self.reader_id)
        if gen and gen != self._gen:
            # The stream was re-created while we were away: everything
            # buffered or cached belongs to a dead incarnation.  Swap to
            # the new generation's shared cache so neither we nor any
            # peer ever serves the old bytes.
            self._ra_buf = b""
            self._at_eof = False
            if self._shared is not None:
                _shared_cache_release(self._client.address, self.name, self._gen)
                self._shared = _shared_cache_acquire(self._client.address, self.name, gen)
                if self._peer_addr is not None:
                    self._shared.peer_addr = self._peer_addr
            if self._ra is not None:
                self._ra.rebind(self._shared, gen)
            self._gen = gen

    def read(self, size: int = -1) -> bytes:  # type: ignore[override]
        if size is None or size < 0:
            chunks = []
            while True:
                chunk = self.read(DEFAULT_READ_BUDGET)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)
        if size == 0:
            return b""
        out = bytearray()
        # 1. Serve from the read-ahead buffer first.
        if self._ra_buf:
            take = min(size, len(self._ra_buf))
            out += self._ra_buf[:take]
            self._ra_buf = self._ra_buf[take:]
            self._pos += take
            size -= take
            if size == 0:
                self.readahead_hits += 1
                self._m_ra_hits.inc()
                self._schedule_readahead()
                return bytes(out)
        # 2. Shared per-process cache: a co-located reader already
        # fetched this range; serve it locally and ack consumption.
        if self._shared is not None and not self._at_eof and size > 0:
            if self._shared.eof_total is not None and self._pos >= self._shared.eof_total:
                self._at_eof = True
                self._schedule_readahead()
                return bytes(out)
            data = self._shared.get(self._pos)
            if data is not None:
                take = min(size, len(data))
                out += data[:take]
                self._ra_buf = data[take:]
                self._ack(self._pos, self._pos + len(data))
                self._pos += take
                size -= take
                self.shared_hits += 1
                self._m_shared_hits.inc()
                self._schedule_readahead()
                return bytes(out)
        # 3. Collect a completed/in-flight read-ahead landing at _pos.
        if self._ra is not None and not self._at_eof and size > 0:
            data = self._ra.take(self._pos)
            if data is not None:
                if not data:
                    self._at_eof = True
                else:
                    take = min(size, len(data))
                    out += data[:take]
                    self._ra_buf = data[take:]
                    self._pos += take
                    size -= take
                if out:
                    self.readahead_hits += 1
                    self._m_ra_hits.inc()
                    self._ra.note_hit()
                    self._schedule_readahead()
                    return bytes(out)
        # 4. Whatever is still missing comes from a demand RPC (a short
        # read is fine — POSIX semantics — but never block past EOF).
        # Clamp to the next window boundary so an in-flight read-ahead
        # request is never partially duplicated.
        if size > 0 and not self._at_eof:
            limit = size
            if self._ra is not None:
                boundary = self._ra.next_boundary(self._pos)
                if boundary is not None and boundary > self._pos:
                    limit = min(limit, boundary - self._pos)
            data = self._read_direct(limit)
            if not data and not out:
                self._at_eof = True
            if data and self._shared is not None:
                self._shared.put(self._pos, data)
                self._maybe_advertise()
            out += data
            self._pos += len(data)
        self._schedule_readahead()
        return bytes(out)

    def _schedule_readahead(self) -> None:
        if self._ra is None or self._at_eof:
            return
        self._ra.schedule(self._pos + len(self._ra_buf))

    def seek(self, offset: int, whence: int = os.SEEK_SET) -> int:  # type: ignore[override]
        if whence == os.SEEK_SET:
            new_pos = offset
        elif whence == os.SEEK_CUR:
            new_pos = self._pos + offset
        else:
            raise OSError("SEEK_END unsupported on a stream reader")
        if new_pos < 0:
            raise ValueError("negative seek position")
        if new_pos != self._pos:
            if self._ra_buf and self._pos <= new_pos < self._pos + len(self._ra_buf):
                # Seek lands inside the buffered run: keep the tail.
                self._ra_buf = self._ra_buf[new_pos - self._pos:]
            else:
                self._ra_buf = b""
                if self._ra is not None:
                    self._ra.discard()
            self._at_eof = False
        self._pos = new_pos
        return self._pos

    def seekable(self) -> bool:
        return True

    def tell(self) -> int:
        return self._pos

    def close(self) -> None:
        if self.closed:
            return
        if self._ra is not None:
            self._ra.close()
            self._ra = None
        self._flush_acks()
        if self._shared is not None:
            last = _shared_cache_release(self._client.address, self.name, self._gen)
            if last and self._peer_addr is not None:
                # Last co-located reader gone: the cache is dropped, so
                # withdraw the holder registration before peers chase it.
                try:
                    self._client.consume_multi(
                        self.name,
                        [],
                        adv={
                            "peer": self._peer_addr,
                            "gen": self._gen,
                            "holds": [],
                            "drops": [[0, _DROP_ALL_END]],
                        },
                    )
                except (OSError, RpcError):  # fault-ok: stale-gen hints miss harmlessly
                    pass
            self._shared = None
        if self._rpc is not None:
            self._rpc.close_all()
            self._rpc = None
        super().close()
