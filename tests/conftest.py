"""Shared fixtures: in-process grid deployments, hosts, servers.

Also enforces a per-test wall-clock ceiling.  When the ``pytest-timeout``
plugin is installed it owns the job (configure it via its own options);
otherwise a SIGALRM-based fallback aborts any test that exceeds
``REPRO_TEST_TIMEOUT`` seconds (default 120) so one wedged poll loop
cannot hang the whole suite.  ``@pytest.mark.timeout(N)`` adjusts the
ceiling per test in either case.
"""

from __future__ import annotations

import importlib.util
import os
import signal

import pytest

from repro.gns.server import NameService
from repro.gns.client import LocalGnsClient
from repro.gridbuffer.server import GridBufferServer
from repro.transport.gridftp import GridFtpServer
from repro.transport.inmem import HostRegistry

_HAVE_TIMEOUT_PLUGIN = importlib.util.find_spec("pytest_timeout") is not None
_DEFAULT_TIMEOUT = float(os.environ.get("REPRO_TEST_TIMEOUT", "120"))


def pytest_configure(config):
    config.addinivalue_line("markers", "slow: long-running test (deselect with -m 'not slow')")
    if not _HAVE_TIMEOUT_PLUGIN:
        config.addinivalue_line(
            "markers", "timeout(seconds): per-test wall-clock ceiling (fallback impl)"
        )


if not _HAVE_TIMEOUT_PLUGIN and hasattr(signal, "SIGALRM"):

    @pytest.fixture(autouse=True)
    def _test_deadline(request):
        marker = request.node.get_closest_marker("timeout")
        limit = float(marker.args[0]) if marker and marker.args else _DEFAULT_TIMEOUT
        if limit <= 0:
            yield
            return

        def _expired(signum, frame):
            pytest.fail(f"test exceeded {limit:.0f}s wall-clock ceiling", pytrace=False)

        previous = signal.signal(signal.SIGALRM, _expired)
        signal.setitimer(signal.ITIMER_REAL, limit)
        try:
            yield
        finally:
            signal.setitimer(signal.ITIMER_REAL, 0)
            signal.signal(signal.SIGALRM, previous)


@pytest.fixture()
def hosts(tmp_path):
    """Two-host virtual grid rooted in tmp_path."""
    registry = HostRegistry(tmp_path / "hosts")
    registry.add_host("alpha")
    registry.add_host("beta")
    return registry


@pytest.fixture()
def buffer_server(tmp_path):
    server = GridBufferServer(cache_dir=tmp_path / "gb-cache")
    server.start()
    yield server
    server.stop()


@pytest.fixture()
def ftp_beta(hosts):
    server = GridFtpServer(hosts.host("beta").root)
    server.start()
    yield server
    server.stop()


@pytest.fixture()
def name_service(buffer_server):
    return NameService(locate_buffer_server=lambda machine: buffer_server.address)


@pytest.fixture()
def gns(name_service):
    return LocalGnsClient(name_service)
