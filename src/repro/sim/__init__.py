"""Discrete-event simulation substrate.

The engine (:mod:`repro.sim.engine`), queuing resources
(:mod:`repro.sim.resources`), the simulated WAN
(:mod:`repro.sim.netsim`) and simulated disks/filesystems
(:mod:`repro.sim.fssim`) together model the paper's international
testbed deterministically, so the evaluation tables can be regenerated
on any laptop.
"""

from .engine import AllOf, AnyOf, Environment, Event, Interrupt, Process, SimulationError, Timeout
from .fssim import Disk, DiskSpec, SimFile, SimFileSystem
from .netsim import LOCALHOST_LINK, Link, LinkSpec, Network
from .resources import Container, ProcessorSharing, Resource, Store

__all__ = [
    "AllOf",
    "AnyOf",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "Disk",
    "DiskSpec",
    "SimFile",
    "SimFileSystem",
    "LOCALHOST_LINK",
    "Link",
    "LinkSpec",
    "Network",
    "Container",
    "ProcessorSharing",
    "Resource",
    "Store",
]
