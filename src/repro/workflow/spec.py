"""Workflow specification: stages, files, and the dataflow graph.

A workflow is a set of *stages* (legacy programs) connected by named
*files* — exactly the paper's model (Figure 5's durability pipeline,
Figure 6's climate chain).  The spec is pure description: how each file
edge is realised (local file, copy, remote, buffer) is decided later by
the scheduler + GNS, never here.  ``work`` and byte annotations drive
the simulator; ``func`` is the real implementation for in-process runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

__all__ = ["FileUse", "Stage", "Workflow", "WorkflowError"]


class WorkflowError(ValueError):
    """Ill-formed workflow (cycle, duplicate producer, dangling file)."""


@dataclass(frozen=True)
class FileUse:
    """One stage's use of one named file.

    ``nbytes`` is the modelled data volume (for simulation and for
    transfer-cost estimates); real runs move whatever bytes the stage
    actually writes.  ``reread_bytes`` models a reader that revisits
    part of the stream (the DARLAM cache-file pattern).
    """

    name: str
    nbytes: int = 0
    reread_bytes: int = 0

    def __post_init__(self) -> None:
        if self.nbytes < 0 or self.reread_bytes < 0:
            raise WorkflowError(f"negative byte counts on file {self.name!r}")


# A stage body: receives a StageIO adapter (see runner) and runs the
# "legacy program".  None for simulation-only workflows.
StageFunc = Callable[..., None]


@dataclass(frozen=True)
class Stage:
    """One program in the pipeline."""

    name: str
    reads: Tuple[FileUse, ...] = ()
    writes: Tuple[FileUse, ...] = ()
    work: float = 0.0          # abstract compute units (brecca-seconds)
    chunks: int = 1            # pipelining granularity (e.g. timesteps)
    tail_fraction: float = 0.0  # share of work done after inputs end (post-stream analysis)
    func: Optional[StageFunc] = None

    def __post_init__(self) -> None:
        # Accept bare strings for convenience: ("f",) -> (FileUse("f"),).
        object.__setattr__(self, "reads", _as_uses(self.reads))
        object.__setattr__(self, "writes", _as_uses(self.writes))
        if self.work < 0:
            raise WorkflowError(f"stage {self.name!r}: negative work")
        if self.chunks < 1:
            raise WorkflowError(f"stage {self.name!r}: chunks must be >= 1")
        if not 0.0 <= self.tail_fraction <= 1.0:
            raise WorkflowError(f"stage {self.name!r}: tail_fraction must be in [0, 1]")
        for coll, what in ((self.reads, "reads"), (self.writes, "writes")):
            names = [f.name for f in coll]
            if len(set(names)) != len(names):
                raise WorkflowError(f"stage {self.name!r}: duplicate {what}: {names}")

    def read_names(self) -> List[str]:
        return [f.name for f in self.reads]

    def write_names(self) -> List[str]:
        return [f.name for f in self.writes]


def _as_uses(items: Sequence) -> Tuple[FileUse, ...]:
    out = []
    for item in items:
        if isinstance(item, FileUse):
            out.append(item)
        elif isinstance(item, str):
            out.append(FileUse(item))
        else:
            raise WorkflowError(f"bad file spec {item!r}")
    return tuple(out)


class Workflow:
    """A validated DAG of stages connected by files.

    Files with a producer and ≥1 consumer are *pipeline edges*; files
    with no producer are *external inputs*; files with no consumer are
    *final outputs*.
    """

    def __init__(self, name: str, stages: Sequence[Stage]):
        self.name = name
        self.stages: Dict[str, Stage] = {}
        for stage in stages:
            if stage.name in self.stages:
                raise WorkflowError(f"duplicate stage name {stage.name!r}")
            self.stages[stage.name] = stage
        self._producers: Dict[str, str] = {}
        self._consumers: Dict[str, List[str]] = {}
        for stage in stages:
            for fu in stage.writes:
                if fu.name in self._producers:
                    raise WorkflowError(
                        f"file {fu.name!r} written by both "
                        f"{self._producers[fu.name]!r} and {stage.name!r}"
                    )
                self._producers[fu.name] = stage.name
            for fu in stage.reads:
                self._consumers.setdefault(fu.name, []).append(stage.name)
        self._graph = self._build_graph()

    # -- construction helpers -------------------------------------------------
    @classmethod
    def build(cls, name: str, stage_defs: Sequence[dict]) -> "Workflow":
        """Concise dict-based constructor used by the app pipelines."""
        stages = []
        for d in stage_defs:
            stages.append(
                Stage(
                    name=d["name"],
                    reads=_as_uses(d.get("reads", ())),
                    writes=_as_uses(d.get("writes", ())),
                    work=d.get("work", 0.0),
                    chunks=d.get("chunks", 1),
                    tail_fraction=d.get("tail_fraction", 0.0),
                    func=d.get("func"),
                )
            )
        return cls(name, stages)

    def _build_graph(self) -> nx.DiGraph:
        g = nx.DiGraph()
        g.add_nodes_from(self.stages)
        for fname, producer in self._producers.items():
            for consumer in self._consumers.get(fname, []):
                if producer == consumer:
                    raise WorkflowError(f"stage {producer!r} reads its own output {fname!r}")
                g.add_edge(producer, consumer, file=fname)
        if not nx.is_directed_acyclic_graph(g):
            cycle = nx.find_cycle(g)
            raise WorkflowError(f"workflow has a cycle: {cycle}")
        return g

    # -- queries ----------------------------------------------------------
    @property
    def graph(self) -> nx.DiGraph:
        return self._graph

    def producer_of(self, file_name: str) -> Optional[str]:
        return self._producers.get(file_name)

    def consumers_of(self, file_name: str) -> List[str]:
        return list(self._consumers.get(file_name, []))

    def pipeline_files(self) -> List[str]:
        """Files that flow stage→stage (have producer and consumer)."""
        return sorted(f for f in self._producers if f in self._consumers)

    def external_inputs(self) -> List[str]:
        return sorted(f for f in self._consumers if f not in self._producers)

    def final_outputs(self) -> List[str]:
        return sorted(f for f in self._producers if f not in self._consumers)

    def topological_order(self) -> List[str]:
        return list(nx.lexicographical_topological_sort(self._graph))

    def upstream(self, stage: str) -> Set[str]:
        return set(nx.ancestors(self._graph, stage))

    def file_use(self, stage: str, file_name: str, direction: str) -> FileUse:
        uses = self.stages[stage].reads if direction == "read" else self.stages[stage].writes
        for fu in uses:
            if fu.name == file_name:
                return fu
        raise KeyError(f"stage {stage!r} does not {direction} {file_name!r}")

    def total_pipeline_bytes(self) -> int:
        return sum(
            self.file_use(self._producers[f], f, "write").nbytes for f in self.pipeline_files()
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Workflow {self.name!r} stages={list(self.stages)}>"
