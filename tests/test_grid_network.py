"""Unit tests for the WAN topology model."""

import pytest

from repro.grid.network import MB, SiteTopology, build_network
from repro.grid.testbed import make_network
from repro.grid.testbed import testbed_topology as _testbed_topology  # noqa: F401 - name must not start with "test"
from repro.sim.engine import Environment


def topo() -> SiteTopology:
    t = SiteTopology()
    t.add_host("a1", site="siteA", country="AU")
    t.add_host("a2", site="siteA", country="AU")
    t.add_host("b1", site="siteB", country="AU")
    t.add_host("us1", site="siteC", country="US")
    t.add_host("uk1", site="siteD", country="UK")
    t.add_host("jp1", site="siteE", country="JP")
    return t


class TestSiteTopology:
    def test_same_host_is_same_site(self):
        assert topo().classify("a1", "a1") == "same-site"

    def test_same_site(self):
        assert topo().classify("a1", "a2") == "same-site"

    def test_same_country_cross_site_is_metro(self):
        assert topo().classify("a1", "b1") == "metro"

    def test_international_sorted_class_names(self):
        t = topo()
        assert t.classify("a1", "us1") == "AU-US"
        assert t.classify("us1", "a1") == "AU-US"
        assert t.classify("jp1", "us1") == "JP-US"
        assert t.classify("uk1", "us1") == "UK-US"
        assert t.classify("jp1", "uk1") == "JP-UK"

    def test_unknown_host_raises(self):
        with pytest.raises(KeyError):
            topo().classify("a1", "nope")

    def test_latency_ordering_au_links(self):
        """AU-JP < AU-US < AU-UK latency, as in real geography."""
        t = topo()
        jp = t.path_spec("a1", "jp1").latency
        us = t.path_spec("a1", "us1").latency
        uk = t.path_spec("a1", "uk1").latency
        assert jp < us < uk

    def test_bandwidth_ordering(self):
        t = topo()
        lan = t.path_spec("a1", "a2").bandwidth
        metro = t.path_spec("a1", "b1").bandwidth
        intl = t.path_spec("a1", "uk1").bandwidth
        assert lan > metro > intl


class TestBuildNetwork:
    def test_all_pairs_connected(self):
        env = Environment()
        net = build_network(env, topo())
        hosts = ["a1", "a2", "b1", "us1", "uk1", "jp1"]
        for i, a in enumerate(hosts):
            for b in hosts[i + 1 :]:
                assert net.spec(a, b).bandwidth > 0

    def test_testbed_network_calibration(self):
        """Link speeds implied by Table 5's File Copy rows."""
        env = Environment()
        net = make_network(env)
        # brecca->vpac27: 150 MB in ~15 s -> ~10 MB/s (same site).
        assert net.spec("brecca", "vpac27").bandwidth == pytest.approx(10 * MB, rel=0.3)
        # brecca->dione: 150 MB in ~50 s -> ~3 MB/s (metro).
        assert net.spec("brecca", "dione").bandwidth == pytest.approx(3 * MB, rel=0.3)
        # brecca->freak: 150 MB in ~215 s -> ~0.7 MB/s (AU-US).
        assert net.spec("brecca", "freak").bandwidth == pytest.approx(0.7 * MB, rel=0.3)
        # brecca->bouscat: 150 MB in ~450 s -> ~0.33 MB/s (AU-UK).
        assert net.spec("brecca", "bouscat").bandwidth == pytest.approx(0.33 * MB, rel=0.3)

    def test_high_latency_to_uk(self):
        env = Environment()
        net = make_network(env)
        assert net.spec("brecca", "bouscat").latency > 0.2
        assert net.spec("brecca", "vpac27").latency < 0.01
