"""Tests for CPU-load sampling in the simulated runner."""

import pytest

from repro.apps.climate import concurrent_plan, sequential_plan
from repro.workflow.simrunner import simulate_plan


class TestLoadSampling:
    def test_concurrent_single_cpu_is_saturated(self):
        """Table 4's explanation: three models concurrently on one CPU
        keep it essentially always busy."""
        report = simulate_plan(concurrent_plan("dione", "buffer"), sample_interval=10.0)
        assert report.utilisation("dione") > 0.95

    def test_sequential_run_has_idle_slices(self):
        """Sequential runs idle during blocking IO (idle_io_fraction)."""
        report = simulate_plan(sequential_plan("freak"), sample_interval=5.0)
        # freak has 12% idle-IO; utilisation must reflect some idleness.
        assert 0.7 < report.utilisation("freak") < 0.99

    def test_no_samples_without_request(self):
        report = simulate_plan(sequential_plan("brecca"))
        assert report.load_samples == {}
        with pytest.raises(ValueError, match="sample_interval"):
            report.utilisation("brecca")

    def test_invalid_interval_rejected(self):
        with pytest.raises(ValueError):
            simulate_plan(sequential_plan("brecca"), sample_interval=0.0)

    def test_sampling_does_not_change_timings(self):
        plain = simulate_plan(sequential_plan("dione")).makespan
        sampled = simulate_plan(sequential_plan("dione"), sample_interval=7.0).makespan
        assert plain == pytest.approx(sampled, rel=1e-9)

    def test_samples_cover_the_run(self):
        report = simulate_plan(sequential_plan("brecca"), sample_interval=10.0)
        times = [t for t, _ in report.load_samples["brecca"]]
        assert times[0] == 0.0
        assert times[-1] >= report.makespan - 10.0
