"""repro.faults — deterministic, seedable failure injection.

The transport, Grid Buffer, and GridFTP layers carry *hook points*: one
attribute load plus a ``None`` check on the hot path, so an unarmed
process pays nothing.  Arming installs a :class:`FaultInjector` whose
rules fire on the Nth call matching a ``(layer, op, peer)`` key and
perform one of four actions:

``error``
    raise :class:`InjectedFault` (a ``ConnectionError``) at the hook;
``close``
    the hook site tears its connection down so the *real* IO path fails
    organically (send/recv raises ``OSError``);
``drop``
    the hook site discards the unit of work without replying (server
    side: read the request, never answer);
``delay``
    sleep ``delay`` seconds at the hook, then continue normally.

Rules are configured through the API (:func:`arm`, :class:`FaultRule`)
or the ``REPRO_FAULTS`` environment variable, which holds
semicolon-separated rules of comma-separated ``key=value`` pairs::

    REPRO_FAULTS='layer=rpc.client,op=gb.read*,action=close,nth=3;
                  layer=gridftp,peer=store2,action=error,nth=1,times=0'

``layer``/``op``/``peer`` are shell-style globs (default ``*``); ``nth``
is the 1-based index of the first matching call that fires (counted per
concrete ``(rule, layer, op, peer)`` key, so "the 3rd gb.read to
store1" means exactly that); ``times`` is how many consecutive matches
fire from there (``0`` = forever).  ``probability`` makes a rule fire
randomly instead — draws come from a ``random.Random`` seeded via
:func:`arm` or ``REPRO_FAULTS_SEED``, so a seeded chaos run is
reproducible.

Every fired rule increments the ``fault_injected_total`` counter
(labels: layer, action) and emits a span event, so a chaos run's
recovery cost is visible in ``repro.obs`` snapshots.
"""

from __future__ import annotations

import fnmatch
import logging
import os
import random
import threading
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from .. import obs

__all__ = [
    "ACTIVE",
    "FaultInjector",
    "FaultRule",
    "InjectedFault",
    "arm",
    "disarm",
    "injected",
    "parse_rules",
]

logger = logging.getLogger(__name__)

_FAULTS_INJECTED = obs.counter(
    "fault_injected_total",
    "Faults fired by the repro.faults injector",
    labelnames=("layer", "action"),
)

_ACTIONS = ("error", "close", "drop", "delay")


class InjectedFault(ConnectionError):
    """Raised at a hook point by an ``action=error`` rule.

    Subclasses ``ConnectionError`` so it flows through the same
    discard/retry paths as a genuine connection failure.
    """


@dataclass(frozen=True)
class FaultRule:
    """One injection rule; see the module docstring for semantics."""

    layer: str = "*"
    op: str = "*"
    peer: str = "*"
    action: str = "error"
    nth: int = 1
    times: int = 1
    delay: float = 0.0
    probability: Optional[float] = None
    message: str = ""

    def __post_init__(self) -> None:
        if self.action not in _ACTIONS:
            raise ValueError(f"unknown fault action {self.action!r} (want one of {_ACTIONS})")
        if self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.times < 0:
            raise ValueError("times must be >= 0 (0 = fire forever)")

    def matches(self, layer: str, op: str, peer: str) -> bool:
        return (
            fnmatch.fnmatchcase(layer, self.layer)
            and fnmatch.fnmatchcase(op, self.op)
            and fnmatch.fnmatchcase(peer, self.peer)
        )


def parse_rules(spec: str) -> List[FaultRule]:
    """Parse the ``REPRO_FAULTS`` rule syntax into :class:`FaultRule`."""
    rules: List[FaultRule] = []
    for chunk in spec.split(";"):
        chunk = chunk.strip()
        if not chunk:
            continue
        kwargs: Dict[str, object] = {}
        for pair in chunk.split(","):
            pair = pair.strip()
            if not pair:
                continue
            if "=" not in pair:
                raise ValueError(f"bad fault rule field {pair!r} (want key=value)")
            key, value = pair.split("=", 1)
            key = key.strip()
            value = value.strip()
            if key in ("nth", "times"):
                kwargs[key] = int(value)
            elif key in ("delay", "probability"):
                kwargs[key] = float(value)
            elif key in ("layer", "op", "peer", "action", "message"):
                kwargs[key] = value
            else:
                raise ValueError(f"unknown fault rule key {key!r}")
        rules.append(FaultRule(**kwargs))  # type: ignore[arg-type]
    return rules


class FaultInjector:
    """Matches hook calls against rules and fires actions deterministically."""

    def __init__(self, rules: Sequence[FaultRule] = (), seed: Optional[int] = None):
        self._rules: List[FaultRule] = list(rules)
        self._rng = random.Random(seed)
        self._lock = threading.Lock()
        # per (rule index, layer, op, peer) match counts — "Nth matching op"
        self._counts: Dict[Tuple[int, str, str, str], int] = {}
        self._fired: List[Tuple[str, str, str, str]] = []

    def add(self, rule: FaultRule) -> None:
        with self._lock:
            self._rules.append(rule)

    @property
    def fired(self) -> List[Tuple[str, str, str, str]]:
        """(layer, op, peer, action) tuples for every fault fired so far."""
        with self._lock:
            return list(self._fired)

    def fire(self, layer: str, op: str, peer: str) -> Optional[str]:
        """Evaluate rules for one hook call.

        Raises :class:`InjectedFault` for ``error`` rules, sleeps for
        ``delay`` rules, and returns ``"close"``/``"drop"`` for the hook
        site to act on (``None`` when nothing fires).
        """
        verdict: Optional[str] = None
        delay = 0.0
        error: Optional[FaultRule] = None
        with self._lock:
            for idx, rule in enumerate(self._rules):
                if not rule.matches(layer, op, peer):
                    continue
                if rule.probability is not None:
                    if self._rng.random() >= rule.probability:
                        continue
                else:
                    key = (idx, layer, op, peer)
                    count = self._counts.get(key, 0) + 1
                    self._counts[key] = count
                    if count < rule.nth:
                        continue
                    if rule.times and count >= rule.nth + rule.times:
                        continue
                self._fired.append((layer, op, peer, rule.action))
                _FAULTS_INJECTED.labels(layer=layer, action=rule.action).inc()
                if rule.action == "delay":
                    delay = max(delay, rule.delay)
                elif rule.action == "error":
                    error = rule
                elif verdict is None:
                    verdict = rule.action
        if delay:
            obs.event("fault.delay", layer=layer, op=op, peer=peer, seconds=delay)
            time.sleep(delay)
        if error is not None:
            obs.event("fault.error", layer=layer, op=op, peer=peer)
            raise InjectedFault(
                error.message or f"injected fault: layer={layer} op={op} peer={peer}"
            )
        if verdict is not None:
            obs.event(f"fault.{verdict}", layer=layer, op=op, peer=peer)
        return verdict


#: The armed injector, or None.  Hook sites read this attribute directly —
#: the disarmed cost is one module-attribute load and a None check.
ACTIVE: Optional[FaultInjector] = None


def arm(
    rules: Sequence[FaultRule] | FaultInjector = (),
    seed: Optional[int] = None,
) -> FaultInjector:
    """Install an injector process-wide and return it."""
    global ACTIVE
    injector = rules if isinstance(rules, FaultInjector) else FaultInjector(rules, seed=seed)
    ACTIVE = injector
    logger.info("fault injector armed (%d rules)", len(injector._rules))
    return injector


def disarm() -> None:
    global ACTIVE
    ACTIVE = None


class injected:
    """Context manager: arm rules for a ``with`` block, then disarm.

    >>> with faults.injected(FaultRule(layer="rpc.client", action="close")):
    ...     client.call("gb.read", ...)
    """

    def __init__(self, *rules: FaultRule, seed: Optional[int] = None):
        self._injector = FaultInjector(rules, seed=seed)

    def __enter__(self) -> FaultInjector:
        arm(self._injector)
        return self._injector

    def __exit__(self, *exc: object) -> None:
        disarm()


def _arm_from_env() -> None:
    spec = os.environ.get("REPRO_FAULTS", "")
    if not spec.strip():
        return
    seed_raw = os.environ.get("REPRO_FAULTS_SEED")
    seed = int(seed_raw) if seed_raw else None
    arm(parse_rules(spec), seed=seed)


_arm_from_env()
