"""Experiment drivers: one function per paper table/figure.

Each ``run_tableN()`` executes the calibrated simulation, assembles a
:class:`~repro.bench.tables.TableBuilder` with model-vs-paper values and
the shape checks from DESIGN.md §5, and returns it.  The benchmark
scripts in ``benchmarks/`` and the CLI both call these.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from ..apps.climate import (
    TABLE3_MACHINES,
    TABLE3_PAPER,
    TABLE4_PAPER,
    TABLE5_PAIRINGS,
    TABLE5_PAPER,
    concurrent_plan,
    sequential_plan,
    split_plan,
)
from ..apps.mecheng import TABLE2_EXPERIMENTS, table2_plan
from ..grid.testbed import TESTBED, paper_table1_rows, testbed_topology
from ..workflow.simrunner import simulate_plan
from .tables import TableBuilder, hms

__all__ = [
    "run_table1",
    "run_table2",
    "run_table3",
    "run_table4",
    "run_table5",
    "run_fig6_stress",
    "ALL_EXPERIMENTS",
]


def run_table1() -> TableBuilder:
    """Table 1: the testbed (modelled machines and their parameters)."""
    table = TableBuilder(
        "Table 1 — Machine list (calibrated model)",
        ["name", "address", "cpu", "mem MB", "country", "speed", "cores"],
    )
    for row in paper_table1_rows():
        table.add_row(
            row["name"],
            row["address"],
            row["cpu"],
            row["mem_mb"],
            row["country"],
            f"{row['model_speed']:.3f}",
            row["model_cores"],
        )
    topo = testbed_topology()
    table.add_check("7 machines across 4 countries (AU/US/JP/UK)", len(TESTBED) == 7
                    and {spec.country for spec in TESTBED.values()} == {"AU", "US", "JP", "UK"})
    table.add_check(
        "brecca (2.8 GHz Xeon) is the fastest machine",
        max(TESTBED.values(), key=lambda s: s.speed).name == "brecca",
    )
    return table


def run_table2() -> TableBuilder:
    """Table 2: the durability pipeline's three experiments."""
    table = TableBuilder(
        "Table 2 — Durability pipeline (total time)",
        ["exp", "assignment / IPC", "model", "paper", "model/paper"],
    )
    totals: Dict[int, float] = {}
    for i in (1, 2, 3):
        report = simulate_plan(table2_plan(i))
        totals[i] = report.makespan
        paper = TABLE2_EXPERIMENTS[i]["paper_total"]
        table.add_row(
            i,
            TABLE2_EXPERIMENTS[i]["label"],
            hms(report.makespan),
            hms(paper),
            f"{report.makespan / paper:.2f}",
        )
    table.add_check("buffers on one machine beat local files (exp2 < exp1)", totals[2] < totals[1])
    table.add_check("distributed pipeline is fastest (exp3 < exp2 < exp1)", totals[3] < totals[2] < totals[1])
    table.add_check(
        "distributed saves roughly 45% over exp1 (paper: 44 min of 99)",
        0.30 < 1 - totals[3] / totals[1] < 0.60,
    )
    return table


def run_table3() -> TableBuilder:
    """Table 3: climate models sequential on each machine."""
    table = TableBuilder(
        "Table 3 — Sequential climate runs (hr:min:sec)",
        ["machine", "C-CAM", "cc2lam", "DARLAM", "total", "paper total", "model/paper"],
    )
    totals: Dict[str, float] = {}
    for machine in TABLE3_MACHINES:
        report = simulate_plan(sequential_plan(machine))
        paper = TABLE3_PAPER[machine]
        totals[machine] = report.makespan
        table.add_row(
            machine,
            hms(report.timings["ccam"].elapsed),
            hms(report.timings["cc2lam"].elapsed),
            hms(report.timings["darlam"].elapsed),
            hms(report.makespan),
            hms(paper[3]),
            f"{report.makespan / paper[3]:.2f}",
        )
    order_model = sorted(totals, key=totals.get)
    order_paper = sorted(TABLE3_PAPER, key=lambda m: TABLE3_PAPER[m][3])
    table.add_check(
        f"machine speed ordering matches paper ({' < '.join(order_paper)})",
        order_model == order_paper,
    )
    table.add_check(
        "every total within 5% of the paper",
        all(abs(totals[m] / TABLE3_PAPER[m][3] - 1) < 0.05 for m in totals),
    )
    return table


def run_table4() -> TableBuilder:
    """Table 4: concurrent same-machine runs, files vs buffers."""
    table = TableBuilder(
        "Table 4 — Concurrent runs on one machine (cumulative DARLAM finish)",
        ["machine", "files", "paper", "buffers", "paper", "buf<files", "vs sequential"],
    )
    all_shapes = True
    seq_signs = True
    for machine in TABLE3_MACHINES:
        files_t = simulate_plan(concurrent_plan(machine, "file-stream")).finish_of("darlam")
        buf_t = simulate_plan(concurrent_plan(machine, "buffer")).finish_of("darlam")
        seq_t = simulate_plan(sequential_plan(machine)).makespan
        p_files, p_buf = TABLE4_PAPER[machine]
        p_seq = TABLE3_PAPER[machine][3]
        buf_wins = buf_t < files_t
        sign_ok = (buf_t < seq_t) == (p_buf < p_seq)
        all_shapes &= buf_wins
        seq_signs &= sign_ok
        table.add_row(
            machine,
            hms(files_t),
            hms(p_files),
            hms(buf_t),
            hms(p_buf),
            "yes" if buf_wins else "NO",
            ("faster" if buf_t < seq_t else "slower") + (" (matches paper)" if sign_ok else " (MISMATCH)"),
        )
    table.add_check("buffers beat files on every machine (paper: 'always faster')", all_shapes)
    table.add_check(
        "buffers-vs-sequential sign matches paper on every machine "
        "(faster except dione and vpac27)",
        seq_signs,
    )
    return table


def run_table5() -> TableBuilder:
    """Table 5: split placement, file copy vs buffers over the WAN."""
    table = TableBuilder(
        "Table 5 — Distributed runs (C-CAM+cc2lam → DARLAM)",
        ["pairing", "files+copy", "paper", "buffers", "paper", "winner", "paper winner", "match"],
    )
    all_match = True
    for src, dst in TABLE5_PAIRINGS:
        files_t = simulate_plan(split_plan(src, dst, "copy")).finish_of("darlam")
        buf_t = simulate_plan(split_plan(src, dst, "buffer")).finish_of("darlam")
        p_files, p_buf = TABLE5_PAPER[(src, dst)]
        winner = "buffers" if buf_t < files_t else "files"
        p_winner = "buffers" if p_buf < p_files else "files"
        match = winner == p_winner
        all_match &= match
        table.add_row(
            f"{src}->{dst}",
            hms(files_t),
            hms(p_files),
            hms(buf_t),
            hms(p_buf),
            winner,
            p_winner,
            "OK" if match else "MISMATCH",
        )
    table.add_check(
        "copy-vs-buffer winner matches the paper on all six pairings "
        "(buffers win on fast/low-latency links, file copy wins to UK/US)",
        all_match,
    )
    return table


def run_fig6_stress(n_rings: int = 24, n_boundary: int = 96) -> TableBuilder:
    """Figure 6a: stress distribution for a hole shape.

    Solves the plate-with-hole FEM and reports the field statistics plus
    an ASCII rendering of von Mises stress (the paper shows a colour
    plot; the *shape* claim is the concentration at the hole sides).
    """
    from ..apps.mecheng import (
        HoleShape,
        boundary_points,
        build_ring_mesh,
        solve_plane_stress,
        stress_concentration_factor,
    )

    shape = HoleShape(r0=1.0, power=2.0, aspect=1.0)
    mesh = build_ring_mesh(boundary_points(shape, n_boundary), n_rings=n_rings, half_width=6.0)
    result = solve_plane_stress(mesh)
    scf = stress_concentration_factor(result)

    table = TableBuilder(
        "Figure 6 — Stress distribution (plate with circular hole, tension in y)",
        ["quantity", "value"],
    )
    table.add_row("elements", len(mesh.triangles))
    table.add_row("nodes", len(mesh.nodes))
    table.add_row("applied stress", f"{result.applied_stress/1e6:.0f} MPa")
    table.add_row("peak von Mises", f"{result.von_mises.max()/1e6:.0f} MPa")
    table.add_row("stress concentration factor", f"{scf:.2f}")
    hole_elems = np.nonzero((mesh.triangles < mesh.n_around).any(axis=1))[0]
    peak = hole_elems[np.argmax(result.von_mises[hole_elems])]
    cx, cy = mesh.nodes[mesh.triangles[peak]].mean(axis=0)
    angle = float(np.degrees(np.arctan2(cy, cx)))
    table.add_row("peak location angle", f"{angle:.0f} deg")
    table.add_check("Kirsch-like concentration (2.7 < SCF < 3.6)", 2.7 < scf < 3.6)
    table.add_check(
        "peak at the hole sides, transverse to the load (|angle| < 15 or > 165 deg)",
        abs(angle) < 15 or abs(angle) > 165,
    )
    return table


ALL_EXPERIMENTS = {
    "table1": run_table1,
    "table2": run_table2,
    "table3": run_table3,
    "table4": run_table4,
    "table5": run_table5,
    "fig6": run_fig6_stress,
}
