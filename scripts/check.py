#!/usr/bin/env python3
"""Repo lint gate: ruff when installed, a built-in fallback otherwise.

CI images that carry ruff get the full ``ruff check`` configured in
pyproject.toml.  Minimal images still get a useful gate with no
third-party dependency:

* every Python file under src/, tests/, benchmarks/ and scripts/ must
  byte-compile;
* module-level imports that are never used are reported (skipped in
  ``__init__.py`` re-export modules and for names listed in
  ``__all__``);
* no file may contain tab indentation or trailing whitespace.

Two repo-specific rules run in BOTH paths (ruff cannot express them):

* in ``src/repro/transport/`` and ``src/repro/gridbuffer/`` an
  ``except`` handler for the OSError family must never swallow
  silently — its body must raise, call something (log, count, clean
  up), or the except line must carry a ``# fault-ok: <why>``
  annotation.  Those layers are where the fault-injection harness
  aims; a silent swallow there hides exactly the failures the recovery
  machinery must see.
* nothing under ``src/`` may call ``time.time()`` — duration math on
  the wall clock breaks under NTP steps, and the distributed-trace
  clock alignment assumes every timestamp is monotonic.  Use
  ``time.monotonic()`` (or ``time.perf_counter()``); code that
  genuinely needs wall-clock time must annotate the line with
  ``# wall-clock-ok: <why>``.

Exit status is non-zero on any finding, so ``python scripts/check.py``
works as a pre-commit / CI step independent of pytest.
"""

from __future__ import annotations

import ast
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
CHECKED_DIRS = ("src", "tests", "benchmarks", "scripts")

#: Directories where an OSError-family except handler must not swallow.
SWALLOW_SCOPES = ("src/repro/transport", "src/repro/gridbuffer")
#: Exception names treated as the OSError family (incl. repro's own
#: ConnectionError subclasses, which flow through the same paths).
OSERROR_NAMES = {
    "OSError", "IOError", "EnvironmentError", "ConnectionError",
    "ConnectionResetError", "ConnectionRefusedError", "ConnectionAbortedError",
    "BrokenPipeError", "TimeoutError", "InterruptedError",
    "FrameError", "InjectedFault", "timeout",
}


def python_files() -> list[Path]:
    out: list[Path] = []
    for name in CHECKED_DIRS:
        base = REPO / name
        if base.is_dir():
            out.extend(sorted(base.rglob("*.py")))
    return out


def run_ruff() -> int:
    proc = subprocess.run(
        ["ruff", "check", *CHECKED_DIRS], cwd=REPO, check=False
    )
    return proc.returncode


def _used_names(tree: ast.AST) -> set[str]:
    used: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Name):
            used.add(node.id)
        elif isinstance(node, ast.Attribute):
            inner = node
            while isinstance(inner, ast.Attribute):
                inner = inner.value
            if isinstance(inner, ast.Name):
                used.add(inner.id)
    return used


def _declared_all(tree: ast.Module) -> set[str]:
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "__all__":
                    try:
                        return set(ast.literal_eval(node.value))
                    except ValueError:
                        return set()
    return set()


def check_file(path: Path) -> list[str]:
    problems: list[str] = []
    rel = path.relative_to(REPO)
    text = path.read_text(encoding="utf-8")
    for lineno, line in enumerate(text.splitlines(), 1):
        stripped = line.rstrip("\n")
        if stripped != stripped.rstrip():
            problems.append(f"{rel}:{lineno}: trailing whitespace")
        body = stripped.lstrip()
        indent = stripped[: len(stripped) - len(body)]
        if "\t" in indent:
            problems.append(f"{rel}:{lineno}: tab indentation")
    try:
        tree = ast.parse(text, filename=str(rel))
    except SyntaxError as exc:
        problems.append(f"{rel}:{exc.lineno}: syntax error: {exc.msg}")
        return problems
    if path.name == "__init__.py":
        return problems  # re-export modules import for their namespace
    exported = _declared_all(tree)
    used = _used_names(tree)
    for node in tree.body:
        if isinstance(node, ast.Import):
            names = [(a.asname or a.name.split(".")[0], a.name) for a in node.names]
        elif isinstance(node, ast.ImportFrom):
            if node.module == "__future__" or any(a.name == "*" for a in node.names):
                continue
            names = [(a.asname or a.name, a.name) for a in node.names]
        else:
            continue
        for bound, original in names:
            if bound.startswith("_") or bound in used or bound in exported:
                continue
            problems.append(
                f"{rel}:{node.lineno}: unused import {original!r}"
            )
    return problems


def _exception_names(node: ast.expr | None) -> set[str]:
    if node is None:
        return set(OSERROR_NAMES)  # bare except catches everything
    names: set[str] = set()
    stack = [node]
    while stack:
        item = stack.pop()
        if isinstance(item, ast.Tuple):
            stack.extend(item.elts)
        elif isinstance(item, ast.Name):
            names.add(item.id)
        elif isinstance(item, ast.Attribute):
            names.add(item.attr)
    return names


def _swallows_silently(handler: ast.ExceptHandler) -> bool:
    """True when the handler body neither raises nor calls anything."""
    for node in ast.walk(handler):
        if isinstance(node, (ast.Raise, ast.Call)):
            return False
    return True


def check_swallowed_oserrors(path: Path, text: str, tree: ast.Module) -> list[str]:
    rel = path.relative_to(REPO)
    if not str(rel).replace("\\", "/").startswith(SWALLOW_SCOPES):
        return []
    lines = text.splitlines()
    problems: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if not (_exception_names(node.type) & OSERROR_NAMES):
            continue
        if not _swallows_silently(node):
            continue
        # Escape hatch: annotate the except clause (or its first body
        # line) with ``# fault-ok: <why>``.
        first_body = node.body[0].lineno if node.body else node.lineno
        annotated = any(
            "fault-ok" in lines[ln - 1]
            for ln in range(node.lineno, min(first_body, len(lines)) + 1)
        )
        if annotated:
            continue
        problems.append(
            f"{rel}:{node.lineno}: OSError-family handler swallows silently; "
            "raise, log/count, or annotate with '# fault-ok: <why>'"
        )
    return problems


def check_wall_clock(path: Path, text: str, tree: ast.Module) -> list[str]:
    """Forbid ``time.time()`` in src/ (monotonic clocks only).

    Duration math against the wall clock breaks under NTP adjustments,
    and the trace merge's clock alignment presumes monotonic stamps.
    ``# wall-clock-ok: <why>`` on the offending line is the escape
    hatch for genuine wall-clock needs (log timestamps, file mtimes).
    """
    rel = path.relative_to(REPO)
    if not str(rel).replace("\\", "/").startswith("src/"):
        return []
    lines = text.splitlines()
    problems: list[str] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        fn = node.func
        is_time_time = (
            isinstance(fn, ast.Attribute)
            and fn.attr == "time"
            and isinstance(fn.value, ast.Name)
            and fn.value.id == "time"
        )
        if not is_time_time:
            continue
        if "wall-clock-ok" in lines[node.lineno - 1]:
            continue
        problems.append(
            f"{rel}:{node.lineno}: time.time() in src/ — use time.monotonic() "
            "for durations, or annotate with '# wall-clock-ok: <why>'"
        )
    return problems


def run_swallow_lint() -> int:
    problems: list[str] = []
    for path in python_files():
        text = path.read_text(encoding="utf-8")
        try:
            tree = ast.parse(text, filename=str(path))
        except SyntaxError:
            continue  # both lint paths already report syntax errors
        problems.extend(check_swallowed_oserrors(path, text, tree))
        problems.extend(check_wall_clock(path, text, tree))
    for problem in problems:
        print(problem)
    return 1 if problems else 0


def run_fallback() -> int:
    problems: list[str] = []
    for path in python_files():
        problems.extend(check_file(path))
    for problem in problems:
        print(problem)
    if problems:
        print(f"\n{len(problems)} problem(s) found")
        return 1
    print(f"checked {len(python_files())} files: clean")
    return 0


def main() -> int:
    if shutil.which("ruff"):
        rc = run_ruff()
    else:
        print("ruff not installed; running built-in fallback checks", file=sys.stderr)
        rc = run_fallback()
    return rc or run_swallow_lint()


if __name__ == "__main__":
    sys.exit(main())
