"""Atmospheric-sciences case study (paper Section 5.3).

C-CAM (stretched-grid global model) → cc2lam (nesting interpolator) →
DARLAM (limited-area model), with DARLAM re-reading input through the
Grid Buffer cache.
"""

from .ccam import GlobalModel, StretchedGrid, read_history_header, run_ccam
from .cc2lam import LamDomain, interpolate_to_domain, run_cc2lam
from .darlam import RegionalModel, run_darlam
from .ensemble import ensemble_plan, ensemble_sim_workflow, ensemble_workflow
from .pipeline import (
    TABLE3_MACHINES,
    TABLE3_PAPER,
    TABLE4_PAPER,
    TABLE5_PAIRINGS,
    TABLE5_PAPER,
    climate_sim_workflow,
    climate_workflow,
    concurrent_plan,
    sequential_plan,
    split_plan,
)

__all__ = [
    "GlobalModel",
    "StretchedGrid",
    "read_history_header",
    "run_ccam",
    "LamDomain",
    "interpolate_to_domain",
    "run_cc2lam",
    "RegionalModel",
    "run_darlam",
    "ensemble_plan",
    "ensemble_sim_workflow",
    "ensemble_workflow",
    "TABLE3_MACHINES",
    "TABLE3_PAPER",
    "TABLE4_PAPER",
    "TABLE5_PAIRINGS",
    "TABLE5_PAPER",
    "climate_sim_workflow",
    "climate_workflow",
    "concurrent_plan",
    "sequential_plan",
    "split_plan",
]
