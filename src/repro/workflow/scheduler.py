"""Placement and coupling decisions for a workflow.

Produces an :class:`ExecutionPlan`: which machine runs each stage, and
how each pipeline file is realised — ``local`` (same-machine file),
``copy`` (sequential + GridFTP copy), or ``buffer`` (concurrent direct
connection).  The paper's scheduling constraint (Section 6) is encoded
in :meth:`ExecutionPlan.start_constraints`: file/copy edges force the
consumer to start after the producer finishes; buffer edges require
concurrent execution.

Also provides a small cost-model scheduler (:func:`choose_coupling`)
that picks copy-vs-buffer per edge from the calibrated network model —
the decision the paper's operators made by hand via GNS entries.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Literal, Mapping, Optional, Tuple

from .. import obs
from ..grid.machine import MachineSpec
from ..sim.netsim import LinkSpec
from .spec import Workflow, WorkflowError

__all__ = ["Coupling", "ExecutionPlan", "plan_workflow", "choose_coupling", "estimate_makespan"]

_COUPLING = obs.counter(
    "workflow_coupling_total",
    "Edge-coupling mechanisms decided by planners",
    labelnames=("mechanism", "source"),
)

#: How a pipeline file is realised:
#:   local       — sequential same-machine file (consumer starts after producer)
#:   copy        — sequential + GridFTP copy between machines
#:   buffer      — concurrent direct connection (Grid Buffer stream)
#:   file-stream — concurrent through a same-machine file (FM file-following;
#:                 the "Files" columns of the paper's Table 4)
Coupling = Literal["local", "copy", "buffer", "file-stream"]


@dataclass(frozen=True)
class ExecutionPlan:
    """A fully wired workflow: placement plus per-file coupling."""

    workflow: Workflow
    placement: Mapping[str, str]          # stage -> machine
    coupling: Mapping[str, Coupling]      # pipeline file -> mechanism

    def __post_init__(self) -> None:
        wf = self.workflow
        missing = set(wf.stages) - set(self.placement)
        if missing:
            raise WorkflowError(f"no placement for stages {sorted(missing)}")
        for fname in wf.pipeline_files():
            mech = self.coupling.get(fname)
            if mech is None:
                raise WorkflowError(f"no coupling decided for pipeline file {fname!r}")
            if mech in ("local", "file-stream"):
                prod = self.placement[wf.producer_of(fname)]
                for consumer in wf.consumers_of(fname):
                    if self.placement[consumer] != prod:
                        raise WorkflowError(
                            f"file {fname!r} marked {mech} but producer on {prod!r} "
                            f"and consumer {consumer!r} on {self.placement[consumer]!r}"
                        )

    def machine_of(self, stage: str) -> str:
        return self.placement[stage]

    def start_constraints(self) -> Dict[str, List[str]]:
        """stage -> producers it must wait for (copy/local-file edges).

        Buffer edges impose no start constraint — those stages overlap.
        """
        wf = self.workflow
        waits: Dict[str, List[str]] = {s: [] for s in wf.stages}
        for fname in wf.pipeline_files():
            if self.coupling[fname] in ("local", "copy"):
                producer = wf.producer_of(fname)
                for consumer in wf.consumers_of(fname):
                    waits[consumer].append(producer)
        return waits

    def is_fully_pipelined(self) -> bool:
        return all(self.coupling[f] == "buffer" for f in self.workflow.pipeline_files())

    def copies_required(self) -> List[Tuple[str, str, str]]:
        """(file, src_machine, dst_machine) for every cross-machine copy edge."""
        wf = self.workflow
        out = []
        for fname in wf.pipeline_files():
            if self.coupling[fname] != "copy":
                continue
            src = self.placement[wf.producer_of(fname)]
            for consumer in wf.consumers_of(fname):
                dst = self.placement[consumer]
                if dst != src:
                    out.append((fname, src, dst))
        return out


def plan_workflow(
    workflow: Workflow,
    placement: Mapping[str, str],
    coupling: Optional[Mapping[str, Coupling]] = None,
    default: Coupling = "local",
) -> ExecutionPlan:
    """Build a plan, defaulting same-machine edges to ``default`` and
    cross-machine edges to ``copy`` unless overridden."""
    decided: Dict[str, Coupling] = {}
    for fname in workflow.pipeline_files():
        if coupling and fname in coupling:
            decided[fname] = coupling[fname]
            _COUPLING.labels(mechanism=decided[fname], source="explicit").inc()
            continue
        prod = placement[workflow.producer_of(fname)]
        cross = any(placement[c] != prod for c in workflow.consumers_of(fname))
        decided[fname] = "copy" if cross else default
        _COUPLING.labels(mechanism=decided[fname], source="default").inc()
    return ExecutionPlan(workflow, dict(placement), decided)


def choose_coupling(
    workflow: Workflow,
    placement: Mapping[str, str],
    machines: Mapping[str, MachineSpec],
    link_of: Mapping[Tuple[str, str], LinkSpec],
    block_size: int = 4096,
    window: int = 8,
) -> Dict[str, Coupling]:
    """Cost-model edge decisions: buffer when streaming beats copy.

    For each cross-machine edge compares (a) sequential copy — producer
    finishes, bulk transfer, consumer starts — against (b) overlapped
    streaming paying per-window latency stalls.  Same-machine edges
    choose buffer when the consumer's compute can hide the producer's
    (any overlap beats none at equal per-MB cost).
    """
    wf = workflow
    out: Dict[str, Coupling] = {}
    for fname in wf.pipeline_files():
        producer = wf.producer_of(fname)
        nbytes = wf.file_use(producer, fname, "write").nbytes
        src = placement[producer]
        consumers = wf.consumers_of(fname)
        dsts = {placement[c] for c in consumers}
        if dsts == {src}:
            out[fname] = "buffer"
            _COUPLING.labels(mechanism="buffer", source="cost_model").inc()
            continue
        dst = sorted(dsts - {src})[0] if dsts - {src} else src
        key = (src, dst) if (src, dst) in link_of else (dst, src)
        link = link_of[key]
        copy_time = 2 * link.rtt + nbytes / link.bandwidth
        nblocks = max(1, -(-nbytes // block_size))
        stall_time = (-(-nblocks // window)) * link.rtt + nbytes / link.bandwidth
        # Streaming overlaps with the producer's compute, so its cost on
        # the critical path is only what exceeds that compute; copying
        # sits entirely on the critical path after the producer ends.
        producer_time = wf.stages[producer].work / machines[src].speed
        stream_critical = max(0.0, stall_time - producer_time) + 0.25 * min(stall_time, producer_time)
        out[fname] = "buffer" if stream_critical < copy_time else "copy"
        _COUPLING.labels(mechanism=out[fname], source="cost_model").inc()
    return out


def estimate_makespan(
    plan: ExecutionPlan,
    machines: Mapping[str, MachineSpec],
    link_of: Mapping[Tuple[str, str], LinkSpec],
) -> float:
    """Quick critical-path estimate (no contention) for plan comparison."""
    wf = plan.workflow
    finish: Dict[str, float] = {}
    starts: Dict[str, float] = {}
    durations: Dict[str, float] = {}
    for stage_name in wf.topological_order():
        stage = wf.stages[stage_name]
        machine = machines[plan.machine_of(stage_name)]
        ready = 0.0
        for fu in stage.reads:
            producer = wf.producer_of(fu.name)
            if producer is None:
                continue
            mech = plan.coupling[fu.name]
            src = plan.machine_of(producer)
            dst = plan.machine_of(stage_name)
            t = finish[producer]
            if mech == "copy" and src != dst:
                key = (src, dst) if (src, dst) in link_of else (dst, src)
                link = link_of[key]
                t += 2 * link.rtt + fu.nbytes / link.bandwidth
            elif mech == "buffer":
                # Overlapped: consumer can finish shortly after producer.
                t = finish[producer]
            ready = max(ready, t)
        duration = stage.work / machine.speed
        # Endpoint IO-stack CPU costs (the calibrated per-MB terms): a
        # placement on a machine with an expensive buffer path must look
        # expensive here too, or the planners systematically overrate
        # slow-IO machines.
        mb = 1024.0 * 1024.0
        for fu in stage.reads:
            if wf.producer_of(fu.name) is None:
                continue
            mech = plan.coupling[fu.name]
            if mech in ("buffer", "file-stream"):
                per = machine.buffer_cpu_per_mb if mech == "buffer" else machine.file_cpu_per_mb
                duration += 0.5 * per * (fu.nbytes / mb) / machine.speed
        for fu in stage.writes:
            consumers = wf.consumers_of(fu.name)
            if not consumers:
                continue
            mech = plan.coupling.get(fu.name)
            if mech in ("buffer", "file-stream"):
                per = machine.buffer_cpu_per_mb if mech == "buffer" else machine.file_cpu_per_mb
                duration += 0.5 * per * (fu.nbytes / mb) / machine.speed
        buffered = any(
            plan.coupling[fu.name] == "buffer"
            for fu in stage.reads
            if wf.producer_of(fu.name) is not None
        )
        if buffered:
            # Pipelined consumer: it starts alongside its earliest
            # buffered producer (NOT at t=0 — the producer chain itself
            # may begin late), and ends at the later of (start + own
            # duration) or (producer finish + one chunk's tail).
            producer_starts = [
                starts[wf.producer_of(fu.name)]
                for fu in stage.reads
                if wf.producer_of(fu.name) is not None
                and plan.coupling[fu.name] == "buffer"
            ]
            my_start = min(producer_starts) if producer_starts else 0.0
            tail = duration / max(1, stage.chunks)
            starts[stage_name] = my_start
            finish[stage_name] = max(my_start + duration, ready + tail)
        else:
            starts[stage_name] = ready
            finish[stage_name] = ready + duration
        durations[stage_name] = duration
    if not finish:
        return 0.0
    # CPU-capacity lower bound: overlapped stages sharing one machine
    # cannot finish before its cores have executed all their work.
    per_machine: Dict[str, float] = {}
    for stage_name, duration in durations.items():
        m = plan.machine_of(stage_name)
        per_machine[m] = per_machine.get(m, 0.0) + duration
    cpu_bound = max(
        total / machines[m].cores for m, total in per_machine.items()
    )
    return max(max(finish.values()), cpu_bound)
