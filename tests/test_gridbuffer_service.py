"""Unit tests for the Grid Buffer service semantics."""

import threading
import time

import pytest

from repro.gridbuffer.cache import BufferCache
from repro.gridbuffer.service import GridBufferError, GridBufferService, StreamClosed


@pytest.fixture()
def svc():
    return GridBufferService()


def make_stream(svc, name="s", n_readers=1, readers=("r1",), cache=None, capacity=None):
    svc.create_stream(name, n_readers=n_readers, capacity_bytes=capacity, cache=cache)
    for r in readers:
        svc.register_reader(name, r)


class TestBasicReadWrite:
    def test_sequential_roundtrip(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"abc")
        svc.write("s", 3, b"def")
        svc.close_writer("s")
        assert svc.read("s", "r1", 0, 6) == b"abcdef"

    def test_read_smaller_than_block(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"0123456789")
        assert svc.read("s", "r1", 0, 4) == b"0123"
        assert svc.read("s", "r1", 4, 6) == b"456789"

    def test_read_spanning_blocks(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"aaa")
        svc.write("s", 3, b"bbb")
        svc.write("s", 6, b"ccc")
        assert svc.read("s", "r1", 1, 7) == b"aabbbcc"

    def test_eof_semantics(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"xy")
        total = svc.close_writer("s")
        assert total == 2
        assert svc.read("s", "r1", 0, 10) == b"xy"  # short read at EOF
        assert svc.read("s", "r1", 2, 10) == b""    # at EOF
        assert svc.read("s", "r1", 99, 1) == b""    # beyond EOF

    def test_random_offset_writes(self, svc):
        """The hash table supports out-of-order (random) writes."""
        make_stream(svc)
        svc.write("s", 5, b"world")
        svc.write("s", 0, b"hello")
        svc.close_writer("s")
        assert svc.read("s", "r1", 0, 10) == b"helloworld"

    def test_close_with_gap_raises(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"a")
        svc.write("s", 5, b"b")
        with pytest.raises(GridBufferError, match="gap"):
            svc.close_writer("s")

    def test_write_after_close_raises(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"x")
        svc.close_writer("s")
        with pytest.raises(StreamClosed):
            svc.write("s", 1, b"y")

    def test_close_idempotent(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"x")
        assert svc.close_writer("s") == 1
        assert svc.close_writer("s") == 1

    def test_unknown_stream_raises(self, svc):
        with pytest.raises(GridBufferError, match="unknown stream"):
            svc.write("nope", 0, b"x")

    def test_unregistered_reader_raises(self, svc):
        make_stream(svc)
        with pytest.raises(GridBufferError, match="not registered"):
            svc.read("s", "ghost", 0, 1)

    def test_too_many_readers_raises(self, svc):
        make_stream(svc, n_readers=1)
        with pytest.raises(GridBufferError, match="already has"):
            svc.register_reader("s", "r2")

    def test_reregister_same_reader_ok(self, svc):
        make_stream(svc)
        svc.register_reader("s", "r1")  # no error

    def test_create_idempotent_same_config(self, svc):
        svc.create_stream("s", n_readers=2)
        svc.create_stream("s", n_readers=2)
        with pytest.raises(GridBufferError):
            svc.create_stream("s", n_readers=3)


class TestBlockingReads:
    def test_read_blocks_until_written(self, svc):
        make_stream(svc)
        result = {}

        def reader():
            result["data"] = svc.read("s", "r1", 0, 5, timeout=5)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        assert "data" not in result  # still blocked
        svc.write("s", 0, b"12345")
        t.join(timeout=5)
        assert result["data"] == b"12345"

    def test_partial_data_returned_without_blocking(self, svc):
        """POSIX semantics: an over-long read returns what is there."""
        make_stream(svc)
        svc.write("s", 0, b"short")
        assert svc.read("s", "r1", 0, 100, timeout=5) == b"short"

    def test_read_at_unwritten_offset_blocks_until_eof(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"12345")
        result = {}

        def reader():
            # Offset 5 has nothing yet; must block until close -> EOF.
            result["data"] = svc.read("s", "r1", 5, 10, timeout=5)

        t = threading.Thread(target=reader)
        t.start()
        time.sleep(0.05)
        assert "data" not in result
        svc.close_writer("s")
        t.join(timeout=5)
        assert result["data"] == b""

    def test_read_timeout(self, svc):
        make_stream(svc)
        with pytest.raises(TimeoutError):
            svc.read("s", "r1", 0, 1, timeout=0.05)


class TestDeleteOnRead:
    def test_block_removed_after_consumption(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"x" * 100)
        assert svc.stats("s").bytes_in_table == 100
        svc.read("s", "r1", 0, 100)
        assert svc.stats("s").bytes_in_table == 0

    def test_partial_consumption_keeps_block(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"x" * 100)
        svc.read("s", "r1", 0, 40)
        assert svc.stats("s").bytes_in_table == 100  # not fully consumed
        svc.read("s", "r1", 40, 60)
        assert svc.stats("s").bytes_in_table == 0

    def test_reread_without_cache_raises(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"data")
        svc.read("s", "r1", 0, 4)
        with pytest.raises(GridBufferError, match="no\\s+cache"):
            svc.read("s", "r1", 0, 4)

    def test_reread_with_cache_served(self, svc, tmp_path):
        cache = BufferCache(tmp_path / "s.cache")
        make_stream(svc, cache=cache)
        svc.write("s", 0, b"cached-data")
        svc.close_writer("s")
        assert svc.read("s", "r1", 0, 11) == b"cached-data"
        assert svc.stats("s").bytes_in_table == 0
        # Seek back: the paper's DARLAM re-read pattern.
        assert svc.read("s", "r1", 0, 6) == b"cached"
        assert svc.stats("s").cache_hits >= 1

    def test_arbitrary_seek_with_cache(self, svc, tmp_path):
        cache = BufferCache(tmp_path / "s.cache")
        make_stream(svc, cache=cache)
        svc.write("s", 0, b"0123456789")
        svc.close_writer("s")
        svc.read("s", "r1", 0, 10)
        assert svc.read("s", "r1", 3, 4) == b"3456"


class TestBroadcast:
    def test_both_readers_get_data(self, svc):
        make_stream(svc, n_readers=2, readers=("a", "b"))
        svc.write("s", 0, b"broadcast")
        assert svc.read("s", "a", 0, 9) == b"broadcast"
        assert svc.read("s", "b", 0, 9) == b"broadcast"

    def test_block_kept_until_all_readers_consume(self, svc):
        make_stream(svc, n_readers=2, readers=("a", "b"))
        svc.write("s", 0, b"x" * 10)
        svc.read("s", "a", 0, 10)
        assert svc.stats("s").bytes_in_table == 10  # b hasn't read
        svc.read("s", "b", 0, 10)
        assert svc.stats("s").bytes_in_table == 0

    def test_block_kept_until_all_readers_registered(self, svc):
        svc.create_stream("s", n_readers=2)
        svc.register_reader("s", "a")
        svc.write("s", 0, b"keep")
        svc.read("s", "a", 0, 4)
        assert svc.stats("s").bytes_in_table == 4  # late reader must see it
        svc.register_reader("s", "b")
        assert svc.read("s", "b", 0, 4) == b"keep"
        assert svc.stats("s").bytes_in_table == 0


class TestBackpressure:
    def test_writer_blocks_at_capacity(self, svc):
        make_stream(svc, capacity=100)
        svc.write("s", 0, b"x" * 100)
        with pytest.raises(TimeoutError):
            svc.write("s", 100, b"y", timeout=0.05)
        assert svc.stats("s").writer_stalls >= 1

    def test_reader_frees_capacity(self, svc):
        make_stream(svc, capacity=100)
        svc.write("s", 0, b"x" * 100)
        unblocked = []

        def writer():
            svc.write("s", 100, b"y" * 50, timeout=5)
            unblocked.append(True)

        t = threading.Thread(target=writer)
        t.start()
        time.sleep(0.05)
        assert not unblocked
        svc.read("s", "r1", 0, 100)  # consume -> free space
        t.join(timeout=5)
        assert unblocked == [True]

    def test_block_larger_than_capacity_rejected(self, svc):
        make_stream(svc, capacity=10)
        with pytest.raises(GridBufferError, match="exceeds"):
            svc.write("s", 0, b"x" * 11)


class TestStatsAndLifecycle:
    def test_stats_counts(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"abcd")
        svc.read("s", "r1", 0, 2)
        stats = svc.stats("s")
        assert stats.bytes_written == 4
        assert stats.bytes_read == 2

    def test_drop_stream(self, svc):
        make_stream(svc)
        assert svc.exists("s")
        svc.drop_stream("s")
        assert not svc.exists("s")
        svc.drop_stream("s")  # idempotent

    def test_validation(self, svc):
        with pytest.raises(ValueError):
            svc.create_stream("s", n_readers=0)
        make_stream(svc)
        with pytest.raises(ValueError):
            svc.write("s", -1, b"x")
        with pytest.raises(ValueError):
            svc.read("s", "r1", -1, 1)

    def test_empty_write_is_noop(self, svc):
        make_stream(svc)
        svc.write("s", 0, b"")
        assert svc.stats("s").bytes_written == 0


class TestConcurrentStreaming:
    def test_pipelined_writer_reader(self, svc, tmp_path):
        """A full producer/consumer run with randomish chunk sizes."""
        cache = BufferCache(tmp_path / "p.cache")
        make_stream(svc, name="pipe", cache=cache, capacity=4096)
        payload = bytes(i % 256 for i in range(100_000))
        received = bytearray()

        def writer():
            pos = 0
            sizes = [1, 7, 512, 4096, 33, 999]
            i = 0
            while pos < len(payload):
                size = sizes[i % len(sizes)]
                chunk = payload[pos : pos + size]
                svc.write("pipe", pos, chunk, timeout=10)
                pos += len(chunk)
                i += 1
            svc.close_writer("pipe")

        def reader():
            pos = 0
            while True:
                chunk = svc.read("pipe", "r1", pos, 777, timeout=10)
                if not chunk:
                    break
                received.extend(chunk)
                pos += len(chunk)

        tw = threading.Thread(target=writer)
        tr = threading.Thread(target=reader)
        tw.start()
        tr.start()
        tw.join(timeout=30)
        tr.join(timeout=30)
        assert bytes(received) == payload
