"""Microbenchmarks of the real components (not paper tables).

Timed with pytest-benchmark's normal statistics so regressions in the
hot paths (framing, buffer service, FM dispatch, DES engine) are
visible across commits.
"""

import threading

import pytest

from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.gns.client import LocalGnsClient
from repro.gns.server import NameService
from repro.gridbuffer.service import GridBufferService
from repro.sim.engine import Environment
from repro.transport.inmem import HostRegistry

PAYLOAD = b"x" * 4096


def test_gridbuffer_service_write_read_pair(benchmark):
    svc = GridBufferService(default_capacity=None)
    svc.create_stream("s")
    svc.register_reader("s", "r")
    state = {"offset": 0}

    def op():
        off = state["offset"]
        svc.write("s", off, PAYLOAD)
        svc.read("s", "r", off, len(PAYLOAD))
        state["offset"] = off + len(PAYLOAD)

    benchmark(op)


def test_fm_local_open_read_close(benchmark, tmp_path):
    hosts = HostRegistry(tmp_path)
    hosts.add_host("m")
    fm = FileMultiplexer(
        GridContext(machine="m", gns=LocalGnsClient(NameService()), hosts=hosts)
    )
    f = fm.open("/bench.bin", "w")
    f.write(PAYLOAD * 16)
    f.close()

    def op():
        f = fm.open("/bench.bin", "r")
        f.read(4096)
        f.close()

    benchmark(op)
    fm.close()


def test_plain_open_baseline(benchmark, tmp_path):
    """Baseline for the FM overhead comparison above."""
    target = tmp_path / "plain.bin"
    target.write_bytes(PAYLOAD * 16)

    def op():
        with open(target, "rb") as f:
            f.read(4096)

    benchmark(op)


def test_des_engine_event_throughput(benchmark):
    def run_sim():
        env = Environment()

        def proc(env):
            for _ in range(1000):
                yield env.timeout(1.0)

        for _ in range(10):
            env.process(proc(env))
        env.run()
        return env.now

    result = benchmark(run_sim)
    assert result == 1000.0


def test_gns_resolution(benchmark):
    from repro.gns.records import GnsRecord, IOMode

    ns = NameService()
    for i in range(200):
        ns.add(GnsRecord(machine=f"m{i % 10}", path=f"/data/file{i}.dat", mode=IOMode.LOCAL))
    ns.add(GnsRecord(machine="*", path="/data/*", mode=IOMode.LOCAL))

    def op():
        return ns.resolve("m3", "/data/file33.dat")

    record = benchmark(op)
    assert record.path == "/data/file33.dat"
