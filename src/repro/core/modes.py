"""Canonical IO-mode vocabulary (re-exported from the GNS records).

The mode enum lives with the GNS record definitions because the GNS is
the component that stores and returns modes; the FM consumes them.
Importing from here keeps call sites reading ``core.modes.IOMode``.
"""

from ..gns.records import BufferEndpoint, GnsRecord, IOMode

__all__ = ["IOMode", "GnsRecord", "BufferEndpoint"]
