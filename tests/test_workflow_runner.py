"""Integration tests for the real (byte-moving) workflow runner."""

import threading

import pytest

from repro.workflow.runner import GridDeployment, RealRunner
from repro.workflow.scheduler import plan_workflow
from repro.workflow.spec import FileUse, Stage, Workflow, WorkflowError


def make_producer_consumer(record_modes=None):
    """A two-stage workflow whose stages only use io.open()."""

    def produce(io):
        with io.open("data.txt", "w") as fh:
            for i in range(100):
                fh.write(f"record {i}\n")

    def consume(io):
        with io.open("data.txt", "r") as fh:
            lines = fh.readlines()
        with io.open("count.txt", "w") as fh:
            fh.write(f"{len(lines)}\n")

    return Workflow(
        "pc",
        [
            Stage("produce", writes=(FileUse("data.txt"),), func=produce),
            Stage(
                "consume",
                reads=(FileUse("data.txt"),),
                writes=(FileUse("count.txt"),),
                func=consume,
            ),
        ],
    )


def read_output(deployment, machine, workflow, name):
    host = deployment.hosts.host(machine)
    return host.resolve(f"/wf/{workflow}/{name}").read_text()


class TestCouplings:
    @pytest.mark.parametrize("mech", ["local", "buffer"])
    def test_same_machine(self, mech):
        wf = make_producer_consumer()
        plan = plan_workflow(wf, {s: "m1" for s in wf.stages}, coupling={"data.txt": mech})
        runner = RealRunner(plan)
        result = runner.run()
        assert result.ok, result.errors
        assert read_output(runner.deployment, "m1", "pc", "count.txt") == "100\n"
        runner.deployment.stop()

    @pytest.mark.parametrize("mech", ["copy", "buffer"])
    def test_cross_machine(self, mech):
        wf = make_producer_consumer()
        plan = plan_workflow(
            wf, {"produce": "m1", "consume": "m2"}, coupling={"data.txt": mech}
        )
        runner = RealRunner(plan)
        result = runner.run()
        assert result.ok, result.errors
        assert read_output(runner.deployment, "m2", "pc", "count.txt") == "100\n"
        runner.deployment.stop()

    def test_file_stream_rejected_for_real_runs(self):
        wf = make_producer_consumer()
        plan = plan_workflow(
            wf, {s: "m1" for s in wf.stages}, coupling={"data.txt": "file-stream"}
        )
        with pytest.raises(WorkflowError, match="simulator-only"):
            RealRunner(plan)


class TestRewiring:
    def test_same_stage_code_all_mechanisms(self):
        """The paper's headline: switching files→buffers→copies changes
        ONLY configuration; outputs are byte-identical."""
        outputs = {}
        for mech, placement in [
            ("local", {"produce": "m1", "consume": "m1"}),
            ("buffer", {"produce": "m1", "consume": "m2"}),
            ("copy", {"produce": "m1", "consume": "m2"}),
        ]:
            wf = make_producer_consumer()
            plan = plan_workflow(wf, placement, coupling={"data.txt": mech})
            runner = RealRunner(plan)
            result = runner.run()
            assert result.ok, result.errors
            outputs[mech] = read_output(
                runner.deployment, placement["consume"], "pc", "count.txt"
            )
            runner.deployment.stop()
        assert outputs["local"] == outputs["buffer"] == outputs["copy"]


class TestOverlap:
    def test_buffered_consumer_starts_before_producer_finishes(self):
        started = {}
        gate = threading.Event()

        def produce(io):
            with io.open("s.bin", "wb") as fh:
                fh.write(b"x" * 10)
                fh.flush()
                # Wait until the consumer proves it is running concurrently.
                assert gate.wait(timeout=20), "consumer never started"
                fh.write(b"y" * 10)

        def consume(io):
            started["consumer"] = True
            gate.set()
            with io.open("s.bin", "rb") as fh:
                data = fh.read()
            assert data == b"x" * 10 + b"y" * 10

        wf = Workflow(
            "overlap",
            [
                Stage("produce", writes=(FileUse("s.bin"),), func=produce),
                Stage("consume", reads=(FileUse("s.bin"),), func=consume),
            ],
        )
        plan = plan_workflow(
            wf, {"produce": "m1", "consume": "m2"}, coupling={"s.bin": "buffer"}
        )
        runner = RealRunner(plan, stage_timeout=30)
        result = runner.run()
        assert result.ok, result.errors
        assert started.get("consumer")
        runner.deployment.stop()


class TestFailures:
    def test_stage_error_reported_not_hung(self):
        def bad(io):
            raise RuntimeError("stage exploded")

        def downstream(io):  # pragma: no cover - must not run
            with io.open("f", "r"):
                pass

        wf = Workflow(
            "bad",
            [
                Stage("bad", writes=(FileUse("f"),), func=bad),
                Stage("down", reads=(FileUse("f"),), func=downstream),
            ],
        )
        plan = plan_workflow(wf, {s: "m1" for s in wf.stages}, coupling={"f": "local"})
        runner = RealRunner(plan, stage_timeout=10)
        result = runner.run()
        assert not result.ok
        assert "bad" in result.errors
        assert "down" in result.errors  # upstream failure propagates
        runner.deployment.stop()

    def test_missing_func_rejected(self):
        wf = Workflow("nf", [Stage("s", writes=(FileUse("f"),))])
        plan = plan_workflow(wf, {"s": "m1"})
        runner = RealRunner(plan)
        with pytest.raises(WorkflowError, match="no func"):
            runner.run()
        runner.deployment.stop()


class TestDeployment:
    def test_deployment_lifecycle(self, tmp_path):
        dep = GridDeployment(["a", "b"], base_dir=tmp_path / "grid")
        with dep:
            assert set(dep.gridftp_locator()) == {"a", "b"}
            ctx = dep.context_for("a")
            assert ctx.machine == "a"

    def test_empty_machines_rejected(self):
        with pytest.raises(WorkflowError):
            GridDeployment([])
