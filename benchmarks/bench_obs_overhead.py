"""Overhead of the observability layer on the remote-read hot path.

Pairs the same pipelined proxy read (prefetch on, simulated-latency
link) with the default registry enabled vs disabled
(:func:`repro.obs.disabled`).  The instrumentation budget is <5% —
each FM read costs one lock acquisition and a float add per bound
counter, which must vanish next to even a LAN round trip.

Emits ``BENCH_obs_overhead.json`` at the repo root so the overhead
trajectory is tracked commit to commit.
"""

import hashlib
import json
import statistics
import time
from pathlib import Path

import pytest

from repro import obs
from repro.core.remote_client import RemoteFileClient
from repro.transport.gridftp import GridFtpClient, GridFtpServer

LINK_LATENCY = 0.002          # one-way seconds injected per RPC
BLOCK = 8192
FILE_BYTES = BLOCK * 48
REPS = 5                      # paired, interleaved repetitions per arm
#: Allowed overhead: 5% relative plus a small absolute floor so timer
#: noise on a sub-100ms run cannot fail the assertion spuriously.
MAX_RELATIVE = 0.05
ABS_SLACK = 0.010


def _timed_read(server_addr, root_digest, scratch):
    client = GridFtpClient(*server_addr, block_size=BLOCK)
    remote = RemoteFileClient(client, scratch_dir=scratch)
    f = remote.open_proxy("/ab.bin", "r", block_size=BLOCK, prefetch=True)
    h = hashlib.sha256()
    t0 = time.perf_counter()
    while True:
        data = f.read(BLOCK)
        if not data:
            break
        h.update(data)
    elapsed = time.perf_counter() - t0
    f.close()
    client.close()
    assert h.hexdigest() == root_digest, "corrupted transfer"
    return elapsed


@pytest.mark.slow
def test_obs_overhead_remote_read(tmp_path):
    """Instrumented vs uninstrumented pipelined remote read, paired."""
    root = tmp_path / "export"
    root.mkdir()
    payload = bytes(i % 256 for i in range(FILE_BYTES))
    (root / "ab.bin").write_bytes(payload)
    digest = hashlib.sha256(payload).hexdigest()

    on_times, off_times = [], []
    with GridFtpServer(root, simulated_latency=LINK_LATENCY) as server:
        # Warm-up run absorbs first-connection and import costs.
        _timed_read(server.address, digest, tmp_path / "scratch-warm")
        for rep in range(REPS):
            on_times.append(
                _timed_read(server.address, digest, tmp_path / f"scratch-on-{rep}")
            )
            with obs.disabled():
                off_times.append(
                    _timed_read(server.address, digest, tmp_path / f"scratch-off-{rep}")
                )

    on_s = min(on_times)
    off_s = min(off_times)
    overhead = (on_s - off_s) / off_s
    assert on_s <= off_s * (1.0 + MAX_RELATIVE) + ABS_SLACK, (
        f"obs overhead {overhead:+.1%} exceeds {MAX_RELATIVE:.0%} "
        f"(enabled {on_s * 1e3:.1f}ms vs disabled {off_s * 1e3:.1f}ms)"
    )

    out = {
        "bench": "obs_overhead_remote_read",
        "link_latency_s": LINK_LATENCY,
        "file_bytes": FILE_BYTES,
        "block_size": BLOCK,
        "reps": REPS,
        "enabled_s": {
            "min": round(on_s, 5),
            "median": round(statistics.median(on_times), 5),
        },
        "disabled_s": {
            "min": round(off_s, 5),
            "median": round(statistics.median(off_times), 5),
        },
        "overhead_relative": round(overhead, 4),
        "budget_relative": MAX_RELATIVE,
    }
    (Path(__file__).resolve().parents[1] / "BENCH_obs_overhead.json").write_text(
        json.dumps(out, indent=2) + "\n"
    )
