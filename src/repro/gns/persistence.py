"""GNS configuration persistence.

The paper's GNS is "a special database" configured per workflow before
execution.  This module serialises a record set to/from JSON so a
workflow wiring can live in version control next to the workflow, and
provides :func:`load_workflow_config` for the common "one JSON file per
workflow" layout::

    {
      "records": [
        {"machine": "m2", "path": "/wf/x/data", "mode": "copy",
         "remote_host": "m1", "remote_path": "/wf/x/data"},
        {"machine": "*", "path": "/wf/x/stream", "mode": "buffer",
         "buffer": {"stream": "x:stream", "cache": true}}
      ]
    }
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import List, Union

from .records import GnsRecord
from .server import NameService

__all__ = ["dump_records", "load_records", "save_gns", "load_gns"]


def dump_records(records: List[GnsRecord]) -> str:
    """Serialise records to a stable, human-diffable JSON document."""
    doc = {"records": [r.to_dict() for r in records]}
    return json.dumps(doc, indent=2, sort_keys=True)


def load_records(text: str) -> List[GnsRecord]:
    """Parse records; raises ValueError on malformed documents."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ValueError(f"invalid GNS config JSON: {exc}") from exc
    if not isinstance(doc, dict) or "records" not in doc:
        raise ValueError("GNS config must be an object with a 'records' list")
    raw = doc["records"]
    if not isinstance(raw, list):
        raise ValueError("'records' must be a list")
    out = []
    for i, entry in enumerate(raw):
        try:
            out.append(GnsRecord.from_dict(entry))
        except (TypeError, ValueError, KeyError) as exc:
            raise ValueError(f"record #{i} invalid: {exc}") from exc
    return out


def save_gns(
    service: NameService, path: Union[str, Path], namespace: str = "default"
) -> None:
    """Write a NameService namespace's records to ``path``."""
    Path(path).write_text(dump_records(service.records(ns=namespace)), encoding="utf-8")


def load_gns(
    path: Union[str, Path],
    service: NameService | None = None,
    namespace: str = "default",
) -> NameService:
    """Load records from ``path`` into ``service`` (or a new one).

    The whole file lands as **one transaction**: watchers observe the
    loaded wiring at a single revision jump, never a half-loaded
    record set.
    """
    records = load_records(Path(path).read_text(encoding="utf-8"))
    if service is None:
        service = NameService()
    service.txn([("add", r) for r in records], ns=namespace)
    return service
