"""A/B the async binary-framed RPC engine against the JSON-threaded one.

Three experiments, all over real TCP on localhost:

* **small-op sweep (0 ms and 5 ms)** — concurrent 4 KiB ``gb.write``
  calls at 1/16/64 in-flight requests, each arm driven the way that
  stack is built to be driven.  Arm *legacy*: the threaded JSON-only
  server (``GridBufferServer(engine="threaded")``) under a pooled sync
  client — one pooled connection and one OS thread per in-flight op,
  which is the old stack's only concurrency model.  Arm *async*: the
  event-loop server with native coroutine handlers under ONE
  ``AsyncRpcClient`` that pipelines every in-flight op over a single
  negotiated-binary connection (strict FIFO replies make this safe).
  Small ops are where per-op threads, per-frame syscalls and header
  serialisation dominate, so this isolates exactly what the PR
  changed.  Cells are medians over alternating trials — the CI box is
  a single core and single runs swing +-30%.
* **streaming at 5 ms** — one writer streams 256 KiB to one read-ahead
  reader per arm, showing the engines converge once payload bytes (and
  injected latency) dominate the frame overhead.
* **reader fan-in** — N readers (512 full / 128 quick) all issue a
  blocking ``gb.read`` on one async loop *before* any byte exists.
  With the threaded engine that would park one server thread each; the
  async engine must hold the process thread count flat while all N
  wait, then deliver everyone from a single write.

Acceptance (full mode): async+binary >= 2x legacy ops/s at 0 ms at the
top pipeline width (64 in-flight ops — the regime this PR targets; the
JSON shows per-width ratios so the scaling story stays visible), and
the fan-in run completes with a flat server thread count.  ``--quick``
(the CI smoke mode) shrinks the op counts and only requires the async
arm to not be *slower* at 0 ms.

Emits ``BENCH_async_framing.json`` at the repo root.  Also runnable
via pytest (``pytest benchmarks/bench_async_framing.py``).
"""

import argparse
import asyncio
import hashlib
import json
import statistics
import threading
import time
from pathlib import Path

from repro.gridbuffer.client import GridBufferClient
from repro.gridbuffer.protocol import OP_READ, OP_WRITE
from repro.gridbuffer.server import GridBufferServer
from repro.transport.aio import AsyncRpcClient
from repro.transport.tcp import RpcClient

BLOCK = 4096
CONCURRENCY = (1, 16, 64)
LATENCIES_MS = (0.0, 5.0)
MIN_SPEEDUP_AT_0MS = 2.0       # full-mode floor
MIN_QUICK_RATIO = 1.0          # CI smoke: never slower
STREAM_BYTES = 256 * 1024
ARMS = ("legacy", "async")


def _server(arm: str, latency_s: float = 0.0) -> GridBufferServer:
    engine = "threaded" if arm == "legacy" else "async"
    return GridBufferServer(engine=engine, simulated_latency=latency_s)


def _client_for(arm: str, addr, width: int) -> RpcClient:
    wire = "json" if arm == "legacy" else None
    return RpcClient(*addr, timeout=60.0, max_connections=width, wire=wire)


# ---------------------------------------------------------------------------
# Experiment 1: small-op throughput sweep
# ---------------------------------------------------------------------------


def _legacy_cell(total_ops: int, latency_ms: float, width: int) -> float:
    """ops/s for the JSON-threaded stack at its best: a pooled sync
    client with one pooled connection and one OS thread per in-flight
    op (the only concurrency model the old stack offers)."""
    payload = b"w" * BLOCK
    with _server("legacy", latency_ms / 1e3) as server:
        rpc = _client_for("legacy", server.address, width)
        try:
            rpc.call(
                "gb.create",
                {"name": "ops", "n_readers": 1, "capacity_bytes": None, "cache": False},
            )
            per_worker = max(1, total_ops // width)
            errors: list = []

            def worker():
                try:
                    for _ in range(per_worker):
                        # offset 0 overwrite: constant table size, so
                        # the arm measures transport, not storage.
                        rpc.call(OP_WRITE, {"name": "ops", "offset": 0}, payload)
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(width)]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - t0
            assert not errors, errors[0]
        finally:
            rpc.close_all()
            rpc.close()
    return per_worker * width / elapsed


def _async_cell(total_ops: int, latency_ms: float, width: int) -> float:
    """ops/s for the async stack at its best: every in-flight op is a
    task multiplexed onto ONE pipelined binary connection — no client
    pool, no thread and no socket per op."""
    payload = b"w" * BLOCK
    with _server("async", latency_ms / 1e3) as server:
        addr = server.address

        async def go() -> float:
            rpc = AsyncRpcClient(*addr, timeout=60.0)
            try:
                await rpc.call(
                    "gb.create",
                    {"name": "ops", "n_readers": 1, "capacity_bytes": None, "cache": False},
                )
                per_worker = max(1, total_ops // width)

                async def worker():
                    for _ in range(per_worker):
                        await rpc.call(OP_WRITE, {"name": "ops", "offset": 0}, payload)

                t0 = time.perf_counter()
                await asyncio.gather(*(worker() for _ in range(width)))
                elapsed = time.perf_counter() - t0
            finally:
                await rpc.close()
            return per_worker * width / elapsed

        return asyncio.run(go())


def sweep_small_ops(total_ops: int, latency_ms: float, trials: int) -> list:
    """Median ops/s per (arm, concurrency) for 4 KiB gb.write round trips.

    Arms alternate within each trial so machine-load drift hits both
    equally; the median absorbs the single-core box's run-to-run swing.
    """
    cells = []
    for width in CONCURRENCY:
        # With injected latency the wall clock is latency-bound, so cap
        # the op count per pipeline depth to keep the sweep short.
        ops = total_ops if latency_ms == 0 else min(total_ops, width * 32)
        samples = {arm: [] for arm in ARMS}
        for _ in range(trials):
            samples["legacy"].append(_legacy_cell(ops, latency_ms, width))
            samples["async"].append(_async_cell(ops, latency_ms, width))
        for arm in ARMS:
            cells.append(
                {
                    "arm": arm,
                    "latency_ms": latency_ms,
                    "concurrency": width,
                    "ops": max(1, ops // width) * width,
                    "trials": trials,
                    "ops_per_s": round(statistics.median(samples[arm]), 1),
                }
            )
    return cells


# ---------------------------------------------------------------------------
# Experiment 2: streaming with injected latency
# ---------------------------------------------------------------------------


def stream_once(arm: str, latency_ms: float) -> dict:
    data = bytes((i * 31) % 256 for i in range(STREAM_BYTES))
    digest = hashlib.sha256(data).hexdigest()
    with _server(arm, latency_ms / 1e3) as server:
        client = GridBufferClient(*server.address, timeout=60.0)
        if arm == "legacy":
            client._rpc = _client_for(arm, server.address, 8)
        errors: list = []
        try:
            client.create_stream("st", n_readers=1)
            reader = client.open_reader("st", read_ahead=True, read_ahead_depth=4)

            def write_all():
                try:
                    w = client.open_writer("st", n_readers=1, coalesce_bytes=16 * 1024)
                    for off in range(0, STREAM_BYTES, BLOCK):
                        w.write(data[off : off + BLOCK])
                    w.close()
                except Exception as exc:  # noqa: BLE001
                    errors.append(exc)

            t0 = time.perf_counter()
            wt = threading.Thread(target=write_all)
            wt.start()
            got = reader.read()
            wt.join()
            elapsed = time.perf_counter() - t0
            reader.close()
            assert not errors, errors[0]
            assert hashlib.sha256(got).hexdigest() == digest
        finally:
            client.close()
    return {
        "arm": arm,
        "latency_ms": latency_ms,
        "bytes": STREAM_BYTES,
        "elapsed_s": round(elapsed, 5),
        "mb_per_s": round(STREAM_BYTES / elapsed / 1e6, 3),
    }


# ---------------------------------------------------------------------------
# Experiment 3: reader fan-in on one loop, no thread per reader
# ---------------------------------------------------------------------------


def fan_in(n_readers: int) -> dict:
    payload = b"f" * BLOCK
    with _server("async") as server:
        ctl = GridBufferClient(*server.address, timeout=60.0)
        ctl.create_stream("fan", n_readers=n_readers)
        for i in range(n_readers):
            ctl.register_reader("fan", f"r{i}")
        stats: dict = {}

        async def one(addr, i):
            rpc = AsyncRpcClient(*addr, timeout=60.0)
            try:
                _, data = await rpc.call(
                    OP_READ,
                    {
                        "name": "fan",
                        "reader_id": f"r{i}",
                        "offset": 0,
                        "length": BLOCK,
                        "timeout": 45.0,
                    },
                )
                return data
            finally:
                await rpc.close()

        async def go(addr):
            baseline = threading.active_count()
            t0 = time.perf_counter()
            tasks = [asyncio.create_task(one(addr, i)) for i in range(n_readers)]
            await asyncio.sleep(0.5)  # every read is parked server-side
            stats["threads_baseline"] = baseline
            stats["threads_while_parked"] = threading.active_count()
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, ctl.write, "fan", 0, payload)
            await loop.run_in_executor(None, ctl.close_writer, "fan")
            results = await asyncio.gather(*tasks)
            stats["elapsed_s"] = round(time.perf_counter() - t0, 5)
            return results

        try:
            results = asyncio.run(go(server.address))
        finally:
            ctl.close()
    assert results == [payload] * n_readers, "fan-in readers saw wrong bytes"
    delta = stats["threads_while_parked"] - stats["threads_baseline"]
    return {
        "readers": n_readers,
        "elapsed_s": stats["elapsed_s"],
        "server_threads_baseline": stats["threads_baseline"],
        "server_threads_peak": stats["threads_while_parked"],
        "thread_delta_while_parked": delta,
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run(quick: bool = False, write_json: bool = True) -> dict:
    total_ops = 512 if quick else 3072
    n_readers = 128 if quick else 512
    trials = 1 if quick else 3
    cells = []
    for latency_ms in LATENCIES_MS:
        cells.extend(sweep_small_ops(total_ops, latency_ms, trials))
    streaming = [stream_once(arm, 5.0) for arm in ARMS]
    fan = fan_in(n_readers)

    def ops_at(arm, latency_ms, width):
        return next(
            c["ops_per_s"]
            for c in cells
            if c["arm"] == arm
            and c["latency_ms"] == latency_ms
            and c["concurrency"] == width
        )

    # The headline compares the arms at the top pipeline width — the
    # concurrency regime this PR targets.  Per-width ratios go in the
    # JSON so the scaling story (legacy degrades with in-flight ops,
    # async improves) stays visible.
    top = max(CONCURRENCY)
    speedup_by_width = {
        w: round(ops_at("async", 0.0, w) / ops_at("legacy", 0.0, w), 2)
        for w in CONCURRENCY
    }
    speedup_0ms = ops_at("async", 0.0, top) / ops_at("legacy", 0.0, top)
    speedup_5ms = ops_at("async", 5.0, top) / ops_at("legacy", 5.0, top)

    out = {
        "bench": "async_framing_ab",
        "quick": quick,
        "block_size": BLOCK,
        "concurrency": list(CONCURRENCY),
        "latencies_ms": list(LATENCIES_MS),
        "small_ops": cells,
        "streaming_5ms": streaming,
        "fan_in": fan,
        "headline_concurrency": top,
        "speedup_by_concurrency_0ms": speedup_by_width,
        "speedup_at_0ms": round(speedup_0ms, 2),
        "speedup_at_5ms": round(speedup_5ms, 2),
        "min_speedup_at_0ms": MIN_QUICK_RATIO if quick else MIN_SPEEDUP_AT_0MS,
    }

    for cell in cells:
        print(
            f"{cell['arm']:>6} {cell['latency_ms']:4.1f}ms x{cell['concurrency']:<3} "
            f"{cell['ops_per_s']:10.1f} ops/s"
        )
    for s in streaming:
        print(f"stream {s['arm']:>6} 5.0ms {s['mb_per_s']:8.3f} MB/s")
    print(
        f"fan-in {fan['readers']} readers: {fan['elapsed_s']}s, "
        f"+{fan['thread_delta_while_parked']} threads while parked"
    )
    print(
        f"speedup at x{top}: {speedup_0ms:.2f}x at 0ms, {speedup_5ms:.2f}x at 5ms "
        f"(by width at 0ms: {speedup_by_width})"
    )

    floor = MIN_QUICK_RATIO if quick else MIN_SPEEDUP_AT_0MS
    assert speedup_0ms >= floor, (
        f"async+binary only {speedup_0ms:.2f}x the JSON-threaded baseline at 0 ms, "
        f"x{top} in flight (need >= {floor}x)"
    )
    # The headline scaling property: hundreds of parked readers must
    # not cost hundreds of threads.  Generous slack for GC/executor
    # warm-up threads; the regression this guards is delta ~= readers.
    assert fan["thread_delta_while_parked"] <= 8, (
        f"{fan['thread_delta_while_parked']} threads appeared while "
        f"{fan['readers']} readers were parked — thread-per-reader regression"
    )

    if write_json:
        path = Path(__file__).resolve().parents[1] / "BENCH_async_framing.json"
        path.write_text(json.dumps(out, indent=2) + "\n")
        print(f"wrote {path}")
    return out


def test_async_framing():
    run(quick=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="CI smoke mode: fewer ops, fewer readers, floor 1.0x at 0 ms",
    )
    parser.add_argument(
        "--no-json", action="store_true", help="skip writing BENCH_async_framing.json"
    )
    args = parser.parse_args()
    run(quick=args.quick, write_json=not args.no_json)


if __name__ == "__main__":
    main()
