"""GridFTP-like file server and client.

Mirrors the two roles GridFTP plays in the paper:

* **bulk copy** — whole-file transfers with optional parallel streams;
  the latency-insensitive path used when the GNS says "copy the file
  between machines" (Table 5 "File Copy" rows).
* **block proxy** — ``GET_BLOCK(offset, length)`` partial reads, used
  by the FM's Remote File Client so an application can read a remote
  file in place without copying it.

Runs over the framed-TCP RPC layer; one server exports one directory
tree (a virtual host's root).
"""

from __future__ import annotations

import hashlib
import threading
import time
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from .. import obs
from .tcp import RpcClient, RpcError, RpcServer

__all__ = ["GridFtpServer", "GridFtpClient", "DEFAULT_BLOCK"]

DEFAULT_BLOCK = 256 * 1024

_RPC_SECONDS = obs.histogram(
    "gridftp_rpc_seconds",
    "Round-trip duration of client RPCs by peer and operation",
    labelnames=("peer", "op"),
)
_RPC_BYTES = obs.counter(
    "gridftp_rpc_bytes_total",
    "Payload bytes moved by client RPCs by peer and operation",
    labelnames=("peer", "op"),
)


class GridFtpServer:
    """Exports one directory over the framed RPC protocol.

    Operations: ``size``, ``exists``, ``get_block``, ``put_block``,
    ``checksum``, ``mkdirs``, ``delete``.
    """

    def __init__(
        self,
        root: Path,
        host: str = "127.0.0.1",
        port: int = 0,
        simulated_latency: float = 0.0,
    ):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._rpc = RpcServer(host, port, simulated_latency=simulated_latency)
        self._lock = threading.Lock()
        self._rpc.register("size", self._op_size)
        self._rpc.register("exists", self._op_exists)
        self._rpc.register("get_block", self._op_get_block)
        self._rpc.register("put_block", self._op_put_block)
        self._rpc.register("checksum", self._op_checksum)
        self._rpc.register("mkdirs", self._op_mkdirs)
        self._rpc.register("delete", self._op_delete)
        self._rpc.register("pull_from", self._op_pull_from)

    # -- lifecycle -----------------------------------------------------------
    @property
    def address(self) -> Tuple[str, int]:
        return self._rpc.address

    def start(self) -> "GridFtpServer":
        self._rpc.start()
        return self

    def stop(self) -> None:
        self._rpc.stop()

    def __enter__(self) -> "GridFtpServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- path safety -----------------------------------------------------------
    def _resolve(self, path: str) -> Path:
        rel = str(path).lstrip("/")
        candidate = (self.root / rel).resolve()
        root = self.root.resolve()
        if root != candidate and root not in candidate.parents:
            raise RpcError("forbidden", f"path escapes export root: {path!r}")
        return candidate

    # -- handlers -----------------------------------------------------------
    def _op_size(self, header: Dict[str, Any], _payload: bytes):
        p = self._resolve(header["path"])
        if not p.exists():
            raise RpcError("not-found", header["path"])
        return {"size": p.stat().st_size}, b""

    def _op_exists(self, header: Dict[str, Any], _payload: bytes):
        return {"exists": self._resolve(header["path"]).exists()}, b""

    def _op_get_block(self, header: Dict[str, Any], _payload: bytes):
        p = self._resolve(header["path"])
        if not p.exists():
            raise RpcError("not-found", header["path"])
        offset = int(header.get("offset", 0))
        length = int(header.get("length", DEFAULT_BLOCK))
        if offset < 0 or length < 0:
            raise RpcError("bad-request", "negative offset/length")
        with open(p, "rb") as fh:
            fh.seek(offset)
            data = fh.read(length)
        return {"offset": offset, "eof": offset + len(data) >= p.stat().st_size}, data

    def _op_put_block(self, header: Dict[str, Any], payload: bytes):
        p = self._resolve(header["path"])
        offset = int(header.get("offset", 0))
        truncate = bool(header.get("truncate", False))
        p.parent.mkdir(parents=True, exist_ok=True)
        with self._lock:
            mode = "r+b" if p.exists() and not truncate else "wb"
            with open(p, mode) as fh:
                fh.seek(offset)
                fh.write(payload)
        return {"written": len(payload)}, b""

    def _op_checksum(self, header: Dict[str, Any], _payload: bytes):
        p = self._resolve(header["path"])
        if not p.exists():
            raise RpcError("not-found", header["path"])
        digest = hashlib.sha256()
        with open(p, "rb") as fh:
            for chunk in iter(lambda: fh.read(1 << 20), b""):
                digest.update(chunk)
        return {"sha256": digest.hexdigest()}, b""

    def _op_mkdirs(self, header: Dict[str, Any], _payload: bytes):
        self._resolve(header["path"]).mkdir(parents=True, exist_ok=True)
        return {}, b""

    def _op_delete(self, header: Dict[str, Any], _payload: bytes):
        p = self._resolve(header["path"])
        existed = p.exists()
        if existed:
            p.unlink()
        return {"deleted": existed}, b""

    def _op_pull_from(self, header: Dict[str, Any], _payload: bytes):
        """Third-party transfer: this server fetches from another one.

        Mirrors GridFTP's server-to-server mode — the data never passes
        through the controlling client.
        """
        target = self._resolve(header["dst_path"])
        source = GridFtpClient(
            header["src_host"],
            int(header["src_port"]),
            block_size=int(header.get("block_size", DEFAULT_BLOCK)),
            parallel_streams=int(header.get("streams", 1)),
        )
        try:
            nbytes = source.fetch_file(header["src_path"], target)
        finally:
            source.close()
        return {"bytes": nbytes}, b""


class GridFtpClient:
    """Client-side API over one GridFTP server.

    ``parallel_streams`` splits bulk copies into interleaved ranges
    moved by concurrent connections (both directions: fetch and store),
    mirroring GridFTP's parallel TCP streams.

    ``monitor`` is any object with ``record(peer, op, nbytes, seconds)``
    (e.g. :class:`repro.core.trace.TransferMonitor`); every RPC is
    timed into it so policy decisions can use measured link numbers.
    """

    def __init__(
        self,
        host: str,
        port: int,
        parallel_streams: int = 1,
        block_size: int = DEFAULT_BLOCK,
        monitor=None,
        peer: Optional[str] = None,
    ):
        if parallel_streams < 1:
            raise ValueError("parallel_streams must be >= 1")
        if block_size < 1:
            raise ValueError("block_size must be >= 1")
        self._addr = (host, port)
        self.parallel_streams = parallel_streams
        self.block_size = block_size
        self.monitor = monitor
        self.peer = peer or f"{host}:{port}"
        self._rpc = RpcClient(host, port)

    # -- observability -------------------------------------------------------
    def _timed(self, op: str, rpc: RpcClient, header: Dict[str, Any], payload: bytes = b""):
        """One RPC round trip, always metered, monitor-recorded if present."""
        t0 = time.perf_counter()
        reply, data = rpc.call(op, header, payload=payload)
        elapsed = time.perf_counter() - t0
        nbytes = max(len(payload), len(data))
        _RPC_SECONDS.labels(peer=self.peer, op=op).observe(elapsed)
        _RPC_BYTES.labels(peer=self.peer, op=op).inc(nbytes)
        if self.monitor is not None:
            self.monitor.record(self.peer, op, nbytes, elapsed)
        return reply, data

    def open_channel(self) -> RpcClient:
        """A dedicated connection for a background pipeline thread.

        Prefetchers and parallel streams must not share the demand
        connection: one blocking request would head-of-line block the
        application's reads.
        """
        return self._rpc.clone()

    # -- metadata -----------------------------------------------------------
    def size(self, path: str) -> int:
        reply, _ = self._timed("size", self._rpc, {"path": path})
        return int(reply["size"])

    def exists(self, path: str) -> bool:
        reply, _ = self._timed("exists", self._rpc, {"path": path})
        return bool(reply["exists"])

    def checksum(self, path: str) -> str:
        reply, _ = self._rpc.call("checksum", {"path": path})
        return str(reply["sha256"])

    def delete(self, path: str) -> bool:
        reply, _ = self._rpc.call("delete", {"path": path})
        return bool(reply["deleted"])

    def third_party_copy(
        self,
        src_host: str,
        src_port: int,
        src_path: str,
        dst_path: str,
        streams: int = 1,
    ) -> int:
        """Ask *this* server to pull a file directly from another server.

        Returns the byte count; the payload never transits the client.
        """
        reply, _ = self._rpc.call(
            "pull_from",
            {
                "src_host": src_host,
                "src_port": src_port,
                "src_path": src_path,
                "dst_path": dst_path,
                "streams": streams,
                "block_size": self.block_size,
            },
        )
        return int(reply["bytes"])

    # -- block proxy ----------------------------------------------------------
    def read_block(self, path: str, offset: int, length: int) -> bytes:
        _, data = self._timed(
            "get_block", self._rpc, {"path": path, "offset": offset, "length": length}
        )
        return data

    def read_block_via(self, rpc: RpcClient, path: str, offset: int, length: int) -> bytes:
        """``read_block`` over a caller-owned channel (prefetch/stream)."""
        _, data = self._timed(
            "get_block", rpc, {"path": path, "offset": offset, "length": length}
        )
        return data

    def write_block(self, path: str, offset: int, data: bytes, truncate: bool = False) -> int:
        reply, _ = self._timed(
            "put_block",
            self._rpc,
            {"path": path, "offset": offset, "truncate": truncate},
            payload=data,
        )
        return int(reply["written"])

    # -- bulk copy -----------------------------------------------------------
    def fetch_file(self, remote_path: str, local_path: Path) -> int:
        """Copy remote → local, using parallel streams for large files.

        Returns the actual number of bytes copied and raises ``IOError``
        if it differs from the remote size at transfer start (e.g. the
        file shrank mid-copy) — a short copy must never pass silently.
        """
        total = self.size(remote_path)
        local_path = Path(local_path)
        local_path.parent.mkdir(parents=True, exist_ok=True)
        if total == 0:
            local_path.write_bytes(b"")
            return 0
        t0 = time.perf_counter()
        if self.parallel_streams == 1 or total <= self.block_size:
            copied = 0
            with open(local_path, "wb") as out:
                while copied < total:
                    data = self.read_block(remote_path, copied, self.block_size)
                    if not data:
                        break
                    out.write(data)
                    copied += len(data)
        else:
            copied = self._parallel_fetch(remote_path, local_path, total)
        if copied != total:
            raise IOError(
                f"short fetch of {remote_path!r}: copied {copied} of {total} bytes"
            )
        if self.monitor is not None:
            self.monitor.record(self.peer, "fetch", copied, time.perf_counter() - t0)
        return copied

    def _parallel_fetch(self, remote_path: str, local_path: Path, total: int) -> int:
        with open(local_path, "wb") as out:
            out.truncate(total)
        errors: list[BaseException] = []
        copied = [0] * self.parallel_streams

        def worker(stream_idx: int) -> None:
            client = self._rpc.clone()
            try:
                with open(local_path, "r+b") as out:
                    offset = stream_idx * self.block_size
                    stride = self.parallel_streams * self.block_size
                    while offset < total:
                        data = self.read_block_via(
                            client, remote_path, offset, self.block_size
                        )
                        if not data:
                            break
                        out.seek(offset)
                        out.write(data)
                        copied[stream_idx] += len(data)
                        offset += stride
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                errors.append(exc)
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.parallel_streams)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return sum(copied)

    def store_file(self, local_path: Path, remote_path: str) -> int:
        """Copy local → remote, using parallel streams for large files."""
        local_path = Path(local_path)
        total = local_path.stat().st_size
        t0 = time.perf_counter()
        if total == 0:
            self.write_block(remote_path, 0, b"", truncate=True)
            return 0
        if self.parallel_streams == 1 or total <= self.block_size:
            with open(local_path, "rb") as fh:
                offset = 0
                first = True
                while True:
                    chunk = fh.read(self.block_size)
                    if not chunk:
                        break
                    self.write_block(remote_path, offset, chunk, truncate=first)
                    offset += len(chunk)
                    first = False
            stored = offset
        else:
            stored = self._parallel_store(local_path, remote_path, total)
        if stored != total:
            raise IOError(
                f"short store of {remote_path!r}: sent {stored} of {total} bytes"
            )
        if self.monitor is not None:
            self.monitor.record(self.peer, "store", stored, time.perf_counter() - t0)
        return stored

    def _parallel_store(self, local_path: Path, remote_path: str, total: int) -> int:
        """Interleaved-range upload mirroring :meth:`_parallel_fetch`."""
        # Create/truncate the target first so every stream can open r+b.
        self.write_block(remote_path, 0, b"", truncate=True)
        errors: list[BaseException] = []
        sent = [0] * self.parallel_streams

        def worker(stream_idx: int) -> None:
            client = self._rpc.clone()
            try:
                with open(local_path, "rb") as src:
                    offset = stream_idx * self.block_size
                    stride = self.parallel_streams * self.block_size
                    while offset < total:
                        src.seek(offset)
                        chunk = src.read(self.block_size)
                        if not chunk:
                            break
                        self._timed(
                            "put_block",
                            client,
                            {"path": remote_path, "offset": offset, "truncate": False},
                            payload=chunk,
                        )
                        sent[stream_idx] += len(chunk)
                        offset += stride
            except BaseException as exc:  # noqa: BLE001 - propagate to caller
                errors.append(exc)
            finally:
                client.close()

        threads = [
            threading.Thread(target=worker, args=(i,), daemon=True)
            for i in range(self.parallel_streams)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        if errors:
            raise errors[0]
        return sum(sent)

    def close(self) -> None:
        self._rpc.close()

    def __enter__(self) -> "GridFtpClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
