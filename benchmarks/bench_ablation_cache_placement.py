"""Ablation A2: Grid Buffer cache file — cost and capability.

Section 3.1/4: the cache file may sit at the writer or the reader end;
it is what allows re-reads and arbitrary seeks on a stream.  This bench
measures (on the real TCP Grid Buffer):

* streaming throughput with cache disabled vs enabled (the cache's
  write-through cost), and
* that re-reads only work when the cache exists.
"""

import threading
import time

import pytest

from repro.bench.tables import TableBuilder
from repro.gridbuffer.client import GridBufferClient
from repro.gridbuffer.server import GridBufferServer

PAYLOAD = bytes(range(256)) * 2048  # 512 KiB
CHUNK = 4096


def _stream_once(server, name, cache):
    client = GridBufferClient(*server.address)
    reader_client = GridBufferClient(*server.address)
    # Create up front so the reader thread cannot race the writer.
    client.create_stream(name, cache=cache)
    received = bytearray()

    def produce():
        w = client.open_writer(name, cache=cache)
        for off in range(0, len(PAYLOAD), CHUNK):
            w.write(PAYLOAD[off : off + CHUNK])
        w.close()

    def consume():
        r = reader_client.open_reader(name, reader_id=f"{name}-r", read_timeout=30)
        while True:
            chunk = r.read(CHUNK)
            if not chunk:
                break
            received.extend(chunk)
        r.close()

    t0 = time.perf_counter()
    tw = threading.Thread(target=produce)
    tr = threading.Thread(target=consume)
    tw.start()
    tr.start()
    tw.join(timeout=60)
    tr.join(timeout=60)
    elapsed = time.perf_counter() - t0
    assert bytes(received) == PAYLOAD
    client.close()
    reader_client.close()
    return len(PAYLOAD) / elapsed / (1024 * 1024)  # MiB/s


def test_ablation_cache_placement(benchmark, tmp_path):
    server = GridBufferServer(cache_dir=tmp_path / "cache")
    with server:
        no_cache = _stream_once(server, "nc", cache=False)
        with_cache = benchmark.pedantic(
            _stream_once, args=(server, "wc", True), rounds=1, iterations=1
        )
        table = TableBuilder(
            "Ablation A2 — cache file cost (real TCP Grid Buffer)",
            ["configuration", "throughput MiB/s", "re-read/seek"],
        )
        table.add_row("cache disabled", f"{no_cache:.1f}", "unsupported")
        table.add_row("cache enabled", f"{with_cache:.1f}", "supported")
        table.add_check(
            "cache write-through costs < 20x throughput", with_cache > no_cache / 20
        )

        # Capability: re-read succeeds only with the cache (reattach as
        # the same reader identity that drained each stream).
        client = GridBufferClient(*server.address)
        r = client.open_reader("wc", reader_id="wc-r", read_timeout=10)
        r.seek(0)
        assert r.read(CHUNK) == PAYLOAD[:CHUNK]
        r.close()

        r2 = client.open_reader("nc", reader_id="nc-r", read_timeout=10)
        r2.seek(0)
        with pytest.raises(Exception) as exc_info:
            r2.read(CHUNK)
        assert "cache" in str(exc_info.value)
        r2.close()
        client.close()
        table.add_check("re-read works iff cache file configured", True)
        table.print()
        assert table.all_checks_pass
