"""Writer/reader matching for direct connections.

"When a direct connection is requested, the system needs to connect
the writer process to the corresponding reader process.  To solve this
problem we have developed a global naming scheme and built a manager
that recognises when writers and readers are referring to the same
information.  Once matched, the system returns the identity and
location of the buffer." (Section 3.2)

The matcher keys on the stream's global name.  The first endpoint to
announce itself *places* the buffer server according to the record's
placement policy (reader-end by default); late arrivals are told the
already-chosen location.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Set, Tuple

__all__ = ["StreamBinding", "ConnectionMatcher"]


@dataclass
class StreamBinding:
    """Resolved location of one stream's buffer server."""

    stream: str
    host: str
    port: int
    placement: str
    writer_host: Optional[str] = None
    reader_hosts: Set[str] = field(default_factory=set)

    @property
    def located(self) -> bool:
        return bool(self.host) and self.port != 0


# Given a machine name, return the (host, port) of a Grid Buffer server
# running there.  Supplied by whoever deploys the services.
ServerLocator = Callable[[str], Tuple[str, int]]


class ConnectionMatcher:
    """Matches writer and reader OPENs of the same global stream name."""

    def __init__(self, locate_server: Optional[ServerLocator] = None):
        self._locate = locate_server
        self._bindings: Dict[str, StreamBinding] = {}
        self._lock = threading.Lock()

    def announce(
        self,
        stream: str,
        role: str,
        machine: str,
        placement: str = "reader",
    ) -> StreamBinding:
        """Register an endpoint; returns the (possibly new) binding.

        ``role`` is ``"writer"`` or ``"reader"``.  The buffer server is
        placed on the machine matching ``placement`` as soon as that
        endpoint announces; until then the binding is unlocated and the
        caller should retry or block (the FM blocks its OPEN).
        """
        if role not in ("writer", "reader"):
            raise ValueError(f"role must be 'writer' or 'reader', got {role!r}")
        with self._lock:
            binding = self._bindings.get(stream)
            if binding is None:
                binding = StreamBinding(stream=stream, host="", port=0, placement=placement)
                self._bindings[stream] = binding
            if role == "writer":
                if binding.writer_host is not None and binding.writer_host != machine:
                    raise ValueError(
                        f"stream {stream!r} already has writer on {binding.writer_host!r}"
                    )
                binding.writer_host = machine
            else:
                binding.reader_hosts.add(machine)
            if not binding.located:
                anchor = self._placement_host(binding)
                if anchor is not None and self._locate is not None:
                    host, port = self._locate(anchor)
                    binding.host, binding.port = host, port
            return binding

    def _placement_host(self, binding: StreamBinding) -> Optional[str]:
        if binding.placement == "writer":
            return binding.writer_host
        if binding.reader_hosts:
            return sorted(binding.reader_hosts)[0]
        return None

    def pin(self, stream: str, host: str, port: int, placement: str = "reader") -> StreamBinding:
        """Explicitly fix a stream's buffer location (GNS-configured)."""
        with self._lock:
            binding = self._bindings.get(stream)
            if binding is None:
                binding = StreamBinding(stream=stream, host=host, port=port, placement=placement)
                self._bindings[stream] = binding
            else:
                binding.host, binding.port, binding.placement = host, port, placement
            return binding

    def lookup(self, stream: str) -> Optional[StreamBinding]:
        with self._lock:
            return self._bindings.get(stream)

    def streams(self) -> list[str]:
        with self._lock:
            return sorted(self._bindings)
