"""Tests for FM call tracing and transfer monitoring."""

import io
import threading

import pytest

from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.core.trace import FmTracer, TransferMonitor
from repro.gns.client import LocalGnsClient
from repro.gns.server import NameService


@pytest.fixture()
def fm(hosts):
    fm = FileMultiplexer(
        GridContext(machine="alpha", gns=LocalGnsClient(NameService()), hosts=hosts)
    )
    yield fm
    fm.close()


class TestFmTracer:
    def test_operations_recorded_in_order(self, fm):
        tracer = FmTracer(fm)
        f = tracer.open("/t.bin", "w")
        f.write(b"12345")
        f.close()
        f = tracer.open("/t.bin", "r")
        f.read(3)
        f.seek(0)
        f.read(2)
        f.close()
        ops = [e.op for e in tracer.events]
        assert ops == ["open", "write", "close", "open", "read", "seek", "read", "close"]

    def test_summary_aggregates(self, fm):
        tracer = FmTracer(fm)
        f = tracer.open("/s.bin", "w")
        f.write(b"x" * 100)
        f.write(b"y" * 50)
        f.close()
        f = tracer.open("/s.bin", "r")
        f.read(150)
        f.close()
        summary = tracer.summary()["/s.bin"]
        assert summary["opens"] == 2
        assert summary["writes"] == 2
        assert summary["bytes_written"] == 150
        assert summary["bytes_read"] == 150

    def test_mode_captured(self, fm):
        tracer = FmTracer(fm)
        tracer.open("/m.bin", "w").close()
        assert tracer.events[0].mode == "local"

    def test_echo_stream(self, fm):
        sink = io.StringIO()
        tracer = FmTracer(fm, echo=sink)
        tracer.open("/e.bin", "w").close()
        text = sink.getvalue()
        assert "open" in text and "/e.bin" in text

    def test_bounded_log(self, fm):
        tracer = FmTracer(fm, max_events=4)
        f = tracer.open("/b.bin", "w")
        for _ in range(10):
            f.write(b"z")
        f.close()
        assert len(tracer.events) == 4

    def test_clear(self, fm):
        tracer = FmTracer(fm)
        tracer.open("/c.bin", "w").close()
        tracer.clear()
        assert len(tracer.events) == 0

    def test_traced_handle_is_functional(self, fm, hosts):
        tracer = FmTracer(fm)
        with io.BufferedWriter(tracer.open("/fn.txt", "w")) as fh:
            fh.write(b"through the tracer\n")
        assert (
            hosts.host("alpha").resolve("/fn.txt").read_bytes()
            == b"through the tracer\n"
        )

    def test_summary_safe_under_concurrent_writes(self, fm):
        """Regression: summary() iterating while handle threads append.

        Before the tracer took a lock, a writer thread mutating the
        event deque mid-iteration could raise ``RuntimeError: deque
        mutated during iteration`` inside summary().
        """
        tracer = FmTracer(fm)
        stop = threading.Event()
        started = threading.Event()
        errors = []

        def writer():
            f = tracer.open("/hot.bin", "w")
            try:
                while not stop.is_set():
                    f.write(b"x" * 64)
                    started.set()
            finally:
                f.close()

        t = threading.Thread(target=writer, daemon=True)
        t.start()
        assert started.wait(timeout=5), "writer thread never wrote"
        try:
            for _ in range(300):
                try:
                    tracer.summary()
                    tracer.snapshot()
                except RuntimeError as exc:  # pragma: no cover - the regression
                    errors.append(exc)
                    break
        finally:
            stop.set()
            t.join(timeout=5)
        assert not errors, f"summary raced the writer thread: {errors[0]}"
        assert tracer.summary()["/hot.bin"]["writes"] > 0

    def test_transfer_summary_without_monitor(self, fm):
        tracer = FmTracer(fm)
        assert tracer.transfer_summary() == {}


class TestTransferMonitor:
    def test_latency_from_small_probes(self):
        mon = TransferMonitor()
        mon.record("peerA", "size", 16, 0.010)
        mon.record("peerA", "size", 16, 0.006)
        assert mon.latency("peerA") == pytest.approx(0.003)  # fastest / 2

    def test_bandwidth_from_bulk(self):
        mon = TransferMonitor()
        mon.record("peerA", "get_block", 1 << 20, 0.5)
        mon.record("peerA", "get_block", 1 << 20, 0.5)
        assert mon.bandwidth("peerA") == pytest.approx((2 << 20) / 1.0)

    def test_small_fetch_is_not_a_latency_probe(self):
        """A whole-file fetch of a tiny file is a bulk op, not a probe.

        Its duration includes per-block RPCs and disk IO; classifying it
        by payload size alone would report a wildly inflated latency.
        """
        mon = TransferMonitor()
        mon.record("peerA", "size", 16, 0.004)       # real probe: 2 ms one-way
        mon.record("peerA", "fetch", 100, 0.250)      # tiny file, slow whole-file copy
        mon.record("peerA", "store", 100, 0.300)
        assert mon.latency("peerA") == pytest.approx(0.002)
        # ...and the fetch/store still count toward bandwidth.
        bw = mon.bandwidth("peerA")
        assert bw == pytest.approx(200 / 0.55)

    def test_zero_duration_samples(self):
        """Instant bulk samples must not divide by zero."""
        mon = TransferMonitor()
        mon.record("peerA", "get_block", 1 << 20, 0.0)
        assert mon.bandwidth("peerA") is None
        mon.record("peerA", "size", 8, 0.0)
        assert mon.latency("peerA") == 0.0

    def test_max_samples_eviction(self):
        mon = TransferMonitor(max_samples=4)
        for i in range(10):
            mon.record("peerA", "size", 8, 0.001 * (i + 1))
        samples = mon.samples("peerA")
        assert len(samples) == 4
        # Oldest (fastest) samples were evicted: latency reflects the rest.
        assert mon.latency("peerA") == pytest.approx(0.007 / 2)

    def test_unknown_peer(self):
        mon = TransferMonitor()
        assert mon.latency("nowhere") is None
        assert mon.bandwidth("nowhere") is None
        assert mon.samples("nowhere") == []

    def test_negative_duration_clamped(self):
        mon = TransferMonitor()
        mon.record("peerA", "size", 8, -0.5)
        assert mon.samples("peerA")[0].seconds == 0.0

    def test_summary_rollup(self):
        mon = TransferMonitor()
        mon.record("peerA", "size", 16, 0.002)
        mon.record("peerA", "get_block", 1 << 16, 0.1)
        out = mon.summary()["peerA"]
        assert out["ops"] == 2
        assert out["bytes"] == 16 + (1 << 16)
        assert out["bandwidth_bps"] is not None
        assert out["latency_s"] == pytest.approx(0.001)
