"""Bench: regenerate Table 3 — sequential climate runs per machine."""

from repro.bench.experiments import run_table3


def test_table3_sequential(once):
    table = once(run_table3)
    table.print()
    assert table.all_checks_pass
