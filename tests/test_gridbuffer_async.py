"""Async Grid Buffer coverage: batched consume, adaptive chunking,
and thousands-of-readers concurrency without per-reader server threads.

Complements ``test_gridbuffer_fastpath.py`` (PR 3 vectored path) with
the async-engine additions: ``gb.consume_multi`` + the shared-cache ack
aggregator, service-level ``mark_consumed_multi`` semantics, bandwidth-
tiered read-ahead chunk sizing, and the headline scaling property — a
parked reader costs a future, not a thread.
"""

import asyncio
import threading

import pytest

from repro.gridbuffer.client import GridBufferClient, _ReadAheadWindow
from repro.gridbuffer.protocol import OP_CONSUME, OP_CONSUME_MULTI, OP_READ
from repro.gridbuffer.service import GridBufferError
from repro.transport.aio import AsyncRpcClient


@pytest.fixture()
def client(buffer_server):
    c = GridBufferClient(*buffer_server.address)
    yield c
    c.close()


class TestConsumeMulti:
    def test_two_readers_one_frame(self, client):
        client.create_stream("cm", n_readers=2)
        client.register_reader("cm", "r0")
        client.register_reader("cm", "r1")
        client.write("cm", 0, b"z" * 8192)
        ok = client.consume_multi("cm", [("r0", [(0, 8192)]), ("r1", [(0, 8192)])])
        assert ok is True
        assert client._consume_multi is True
        stats = client.stats("cm")
        assert stats["bytes_read"] == 2 * 8192  # both readers accounted
        assert stats["blocks_in_table"] == 0    # one GC pass emptied it

    def test_falls_back_per_reader_against_old_server(self, client, buffer_server):
        del buffer_server._rpc._handlers[OP_CONSUME_MULTI]
        client.create_stream("cm-old", n_readers=2)
        client.register_reader("cm-old", "r0")
        client.register_reader("cm-old", "r1")
        client.write("cm-old", 0, b"y" * 4096)
        ok = client.consume_multi("cm-old", [("r0", [(0, 4096)]), ("r1", [(0, 4096)])])
        assert ok is True                        # served via per-reader gb.consume
        assert client._consume_multi is False    # fallback pinned
        assert client._vectored is True          # plain consume still works
        assert client.stats("cm-old")["blocks_in_table"] == 0

    def test_reports_unsupported_when_even_consume_missing(self, client, buffer_server):
        for op in (OP_CONSUME, OP_CONSUME_MULTI):
            del buffer_server._rpc._handlers[op]
        client.create_stream("cm-none", n_readers=1)
        client.register_reader("cm-none", "r0")
        client.write("cm-none", 0, b"x" * 100)
        assert client.consume_multi("cm-none", [("r0", [(0, 100)])]) is False

    def test_empty_entries_is_noop(self, client):
        assert client.consume_multi("whatever", []) is True

    def test_mark_consumed_multi_validates_all_readers_upfront(self, buffer_server):
        """A bad reader anywhere in the batch rejects the whole frame."""
        service = buffer_server.service
        service.create_stream("mv", n_readers=1)
        service.register_reader("mv", "real")
        service.write("mv", 0, b"k" * 4096)
        with pytest.raises(GridBufferError):
            service.mark_consumed_multi(
                "mv", [("real", [(0, 4096)]), ("ghost", [(0, 4096)])]
            )
        # Nothing was applied: the valid entry must not have been
        # consumed before validation rejected the batch.
        assert service.stats("mv").blocks_in_table == 1


class TestSharedAckAggregator:
    def test_colocated_readers_batch_acks_into_one_frame(
        self, client, buffer_server, monkeypatch
    ):
        """Acks from co-located readers pool and flush as consume_multi."""
        from repro.gridbuffer.client import BufferReader

        monkeypatch.setattr(BufferReader, "ACK_FLUSH_BYTES", 1 << 30)  # flush on close only
        payload = bytes(i % 251 for i in range(32 * 1024))
        w = client.open_writer("sha", n_readers=2, cache=True)
        w.write(payload)
        w.close()
        r0 = client.open_reader("sha", reader_id="a", shared_cache=True)
        r1 = client.open_reader("sha", reader_id="b", shared_cache=True)
        assert r0.read() == payload      # real fetches populate the cache
        assert r1.read() == payload      # served locally, acks queued
        assert r1.shared_hits > 0
        shared = r1._shared
        assert shared is not None
        r0.close()
        r1.close()                       # drains the pooled acks
        assert shared.ack_flushes >= 1
        assert shared.drain_acks() is None  # nothing left behind
        stats = client.stats("sha")
        assert stats["bytes_read"] >= 2 * len(payload)
        assert stats["blocks_in_table"] == 0

    def test_aggregate_threshold_triggers_flush(self, client):
        client.create_stream("thr", n_readers=3)
        client.register_reader("thr", "a")
        client.register_reader("thr", "b")
        client.write("thr", 0, b"m" * 4096)
        r = client.open_reader("thr", reader_id="ignored", shared_cache=True)
        shared = r._shared
        # Below the threshold nothing flushes; crossing it returns the
        # pooled batch covering *both* readers.
        assert shared.ack(("a"), 0, 100, flush_bytes=300) is None
        entries = shared.ack("b", 0, 250, flush_bytes=300)
        assert entries is not None
        assert sorted(rid for rid, _ in entries) == ["a", "b"]
        r.close()

    def test_contiguous_acks_merge_per_reader(self, client):
        client.create_stream("mrg", n_readers=1)
        r = client.open_reader("mrg", reader_id="r", shared_cache=True)
        shared = r._shared
        shared.ack("r", 0, 100, flush_bytes=1 << 30)
        shared.ack("r", 100, 200, flush_bytes=1 << 30)
        shared.ack("r", 300, 400, flush_bytes=1 << 30)
        entries = shared.drain_acks()
        assert entries == [("r", [[0, 200], [300, 400]])]
        r.close()


class _FakeMonitor:
    def __init__(self, bandwidth, latency=0.001):
        self._bw = bandwidth
        self._lat = latency

    def bandwidth(self, peer):
        return self._bw

    def latency(self, peer):
        return self._lat

    def record(self, peer, op, nbytes, seconds):
        pass


class TestAdaptiveChunk:
    @pytest.mark.parametrize(
        ("bandwidth", "expected"),
        [
            (512 * 1024, 16 * 1024),        # < 1 MB/s
            (4 << 20, 64 * 1024),           # < 8 MB/s
            (32 << 20, 256 * 1024),         # < 64 MB/s
            (500 << 20, 1024 * 1024),       # above the top tier
        ],
    )
    def test_chunk_follows_bandwidth_tier(self, client, bandwidth, expected):
        client.create_stream("tier", n_readers=1)
        client.register_reader("tier", "r")
        client.monitor = _FakeMonitor(bandwidth)
        window = _ReadAheadWindow(client, "tier", "r", None, 64 * 1024, 1)
        try:
            assert window._target_chunk() == expected
            window.schedule(0)  # idle window: re-tiers before queueing
            assert window._chunk == expected
        finally:
            window.close()

    def test_no_monitor_keeps_configured_chunk(self, client):
        client.create_stream("fix", n_readers=1)
        client.register_reader("fix", "r")
        window = _ReadAheadWindow(client, "fix", "r", None, 64 * 1024, 1)
        try:
            assert window._target_chunk() == 64 * 1024
        finally:
            window.close()

    def test_no_retier_while_requests_outstanding(self, client):
        """An in-flight span must never be re-gridded underneath."""
        client.create_stream("busy", n_readers=1)
        client.register_reader("busy", "r")
        client.monitor = _FakeMonitor(500 << 20)
        window = _ReadAheadWindow(client, "busy", "r", None, 64 * 1024, 1)
        try:
            with window._cv:
                window._inflight[0] = 64 * 1024  # simulate an outstanding request
            window.schedule(0)
            assert window._chunk == 64 * 1024  # unchanged while busy
            with window._cv:
                window._inflight.clear()
                window._queue.clear()
            window.schedule(1 << 40)  # idle again (past EOF region is fine)
            assert window._chunk == 1024 * 1024
        finally:
            window.close()


class TestManyAsyncReaders:
    N = 128

    def test_parked_readers_hold_no_server_threads(self, buffer_server):
        """N concurrently blocked reads park futures, not threads.

        All N readers issue a blocking ``gb.read`` before any byte is
        written; with the threaded server that used to pin N handler
        threads.  The async engine must keep the process thread count
        flat while all N are parked, then deliver everyone when the
        writer shows up.
        """
        ctl = GridBufferClient(*buffer_server.address)
        ctl.create_stream("fan", n_readers=self.N)
        for i in range(self.N):
            ctl.register_reader("fan", f"r{i}")
        payload = b"w" * 4096
        parked_threads = {}

        async def one(addr, i):
            rpc = AsyncRpcClient(*addr, timeout=30.0)
            try:
                _, data = await rpc.call(
                    OP_READ,
                    {
                        "name": "fan",
                        "reader_id": f"r{i}",
                        "offset": 0,
                        "length": len(payload),
                        "timeout": 20.0,
                    },
                )
                return data
            finally:
                await rpc.close()

        async def go(addr):
            baseline = threading.active_count()
            tasks = [asyncio.create_task(one(addr, i)) for i in range(self.N)]
            await asyncio.sleep(0.5)  # let every read park server-side
            parked_threads["delta"] = threading.active_count() - baseline
            loop = asyncio.get_running_loop()
            await loop.run_in_executor(None, ctl.write, "fan", 0, payload)
            await loop.run_in_executor(None, ctl.close_writer, "fan")
            return await asyncio.gather(*tasks)

        try:
            results = asyncio.run(go(buffer_server.address))
        finally:
            ctl.close()
        assert results == [payload] * self.N
        # The parked phase must not have grown a thread per reader.
        assert parked_threads["delta"] <= 8, (
            f"{parked_threads['delta']} new threads while {self.N} readers parked"
        )
