"""Tests for the computational-economy scheduler."""

import pytest

from repro.grid.testbed import TESTBED
from repro.grid.testbed import testbed_topology as _topology
from repro.workflow.autoplace import links_from_network
from repro.workflow.economy import QosGoal, economy_schedule, plan_cost
from repro.workflow.scheduler import plan_workflow
from repro.workflow.spec import FileUse, Stage, Workflow

MB = 1024 * 1024

#: Faster machines cost more grid-dollars per CPU-second.
PRICES = {"brecca": 10.0, "dione": 4.0, "vpac27": 1.0}


def wf():
    return Workflow(
        "econ",
        [
            Stage("a", writes=(FileUse("f", 5 * MB),), work=100, chunks=10),
            Stage("b", reads=(FileUse("f", 5 * MB),), work=200, chunks=10),
        ],
    )


def machines():
    return {n: TESTBED[n] for n in PRICES}


def links():
    return links_from_network(sorted(PRICES), _topology())


class TestQosGoal:
    def test_validation(self):
        with pytest.raises(ValueError):
            QosGoal(deadline=0)
        with pytest.raises(ValueError):
            QosGoal(budget=-1)
        with pytest.raises(ValueError):
            QosGoal(optimise="balanced")


class TestPlanCost:
    def test_cost_formula(self):
        plan = plan_workflow(wf(), {"a": "brecca", "b": "vpac27"})
        cost = plan_cost(plan, machines(), PRICES)
        expected = (100 / TESTBED["brecca"].speed) * 10.0 + (
            200 / TESTBED["vpac27"].speed
        ) * 1.0
        assert cost == pytest.approx(expected)


class TestEconomySchedule:
    def test_cheapest_with_loose_deadline_picks_cheap_machine(self):
        goal = QosGoal(deadline=1e9, optimise="cheapest")
        result = economy_schedule(wf(), machines(), links(), PRICES, goal)
        assert result is not None
        # vpac27 is by far the cheapest per work unit.
        assert set(result.plan.placement.values()) == {"vpac27"}

    def test_tight_deadline_forces_fast_expensive_machine(self):
        goal = QosGoal(deadline=330.0, optimise="cheapest")
        result = economy_schedule(wf(), machines(), links(), PRICES, goal)
        assert result is not None
        assert result.makespan <= 330.0
        assert "brecca" in result.plan.placement.values()
        loose = economy_schedule(
            wf(), machines(), links(), PRICES, QosGoal(optimise="cheapest")
        )
        assert result.cost > loose.cost  # meeting the deadline costs money

    def test_fastest_within_budget(self):
        goal = QosGoal(budget=2000.0, optimise="fastest")
        result = economy_schedule(wf(), machines(), links(), PRICES, goal)
        assert result is not None
        assert result.cost <= 2000.0
        unconstrained = economy_schedule(
            wf(), machines(), links(), PRICES, QosGoal(optimise="fastest")
        )
        assert result.makespan >= unconstrained.makespan

    def test_infeasible_returns_none(self):
        goal = QosGoal(deadline=1.0, optimise="cheapest")
        assert economy_schedule(wf(), machines(), links(), PRICES, goal) is None

    def test_budget_and_deadline_both_bind(self):
        goal = QosGoal(deadline=330.0, budget=1.0, optimise="cheapest")
        assert economy_schedule(wf(), machines(), links(), PRICES, goal) is None

    def test_missing_price_rejected(self):
        with pytest.raises(ValueError, match="no price"):
            economy_schedule(wf(), machines(), links(), {"brecca": 1.0}, QosGoal())

    def test_search_space_guard(self):
        big = Workflow("big", [Stage(f"s{i}", work=1) for i in range(30)])
        with pytest.raises(ValueError, match="max_candidates"):
            economy_schedule(big, machines(), links(), PRICES, QosGoal())
