"""Tests for transparent record translation on FM handles."""

import io
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heterogeneity import FieldType, HeterogeneityError, RecordSchema
from repro.core.translating import TranslatingReader, TranslatingWriter


def schema() -> RecordSchema:
    return RecordSchema([FieldType("idx", "int32"), FieldType("val", "float32")])


def be_records(n):
    return b"".join(struct.pack(">if", i, i * 0.5) for i in range(n))


def native_records(n):
    return b"".join(struct.pack("=if", i, i * 0.5) for i in range(n))


class TestTranslatingReader:
    def test_whole_file_read(self):
        r = TranslatingReader(io.BytesIO(be_records(10)), schema(), "big")
        assert r.read() == native_records(10)

    def test_unaligned_small_reads(self):
        r = TranslatingReader(io.BytesIO(be_records(6)), schema(), "big")
        out = bytearray()
        while True:
            chunk = r.read(3)  # never aligned with the 8-byte records
            if not chunk:
                break
            out += chunk
        assert bytes(out) == native_records(6)

    def test_mid_record_truncation_detected(self):
        raw = be_records(3)[:-2]
        r = TranslatingReader(io.BytesIO(raw), schema(), "big")
        with pytest.raises(HeterogeneityError, match="mid-record"):
            r.read()

    def test_same_order_passthrough(self):
        native = native_records(4)
        import sys

        r = TranslatingReader(io.BytesIO(native), schema(), sys.byteorder)
        assert r.read() == native

    def test_works_under_buffered_reader(self):
        r = io.BufferedReader(TranslatingReader(io.BytesIO(be_records(8)), schema(), "big"))
        assert r.read(8) == native_records(1)

    def test_bad_order_rejected(self):
        with pytest.raises(HeterogeneityError):
            TranslatingReader(io.BytesIO(), schema(), "vax")


class TestTranslatingWriter:
    def test_whole_records(self):
        sink = io.BytesIO()
        w = TranslatingWriter(sink, schema(), "big", close_inner=False)
        w.write(native_records(5))
        w.close()
        assert sink.getvalue() == be_records(5)

    def test_fragmented_writes(self):
        sink = io.BytesIO()
        w = TranslatingWriter(sink, schema(), "big", close_inner=False)
        data = native_records(4)
        for i in range(0, len(data), 3):
            w.write(data[i : i + 3])
        w.close()
        assert sink.getvalue() == be_records(4)

    def test_incomplete_record_at_close_rejected(self):
        w = TranslatingWriter(io.BytesIO(), schema(), "big")
        w.write(b"\x00\x01\x02")
        with pytest.raises(HeterogeneityError, match="incomplete record"):
            w.close()

    @given(
        n=st.integers(min_value=0, max_value=30),
        chunk=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_any_fragmentation(self, n, chunk):
        sink = io.BytesIO()
        w = TranslatingWriter(sink, schema(), "big", close_inner=False)
        data = native_records(n)
        for i in range(0, len(data), chunk):
            w.write(data[i : i + chunk])
        w.close()
        r = TranslatingReader(io.BytesIO(sink.getvalue()), schema(), "big")
        assert r.read() == data


class TestEndToEndHeterogeneous:
    def test_big_endian_writer_little_reader_over_gridbuffer(self, buffer_server):
        """A 'big-endian machine' writes a stream; the reader machine
        sees native-order data — the FM heterogeneity path live."""
        from repro.gridbuffer.client import GridBufferClient

        client = GridBufferClient(*buffer_server.address)
        s = schema()
        bw = client.open_writer("hetero", cache=True)
        # Writer-side translation: native producer -> big-endian wire.
        tw = TranslatingWriter(bw, s, "big")
        tw.write(native_records(16))
        tw.close()
        br = client.open_reader("hetero", read_timeout=10)
        tr = TranslatingReader(br, s, "big")
        assert tr.read() == native_records(16)
        tr.close()
        client.close()
