"""Cooperative block cache A/B: peer-to-peer fetch vs origin-only.

The broadcast regime the cooperative cache targets: one pre-written
stream, N reader processes, and an *origin under constraint* — the
Grid Buffer front end runs with ``simulated_latency=5ms`` and a
single-transfer data channel (``max_inflight=1`` over the read ops
only), modelling a WAN link that carries one bulk transfer at a time
while small control frames merely pay the latency.  A long-lived
**leader** process reads the stream once
(filling its shared block cache and advertising itself as a holder),
then N **follower** processes read it concurrently:

* arm *origin*: plain read-ahead readers — every byte re-crosses the
  constrained origin link, N times over.
* arm *peer*: ``peer_cache=True`` readers — the origin's ``cached_at``
  hints (delivered with registration, refreshed on consume acks)
  redirect every fetch to the leader's ``gb.peer_read`` endpoint; the
  origin only sees consume acks and holder advertisements.

Readers are separate OS processes on purpose: the shared block cache
is per-process, so in-process "peers" would short-circuit through it
and never exercise the wire.

Acceptance (full mode): aggregate follower throughput with peers is
>= 3x the origin-only arm at 8 readers, and the peer arm's origin read
ops stay near-constant as the reader count doubles (2 -> 4 -> 8).
``--smoke`` (the CI mode) runs 2 followers over a small file and only
asserts correctness plus that peer fetches actually happened.

Emits ``BENCH_peer_cache.json`` at the repo root.  Also runnable via
pytest (``pytest benchmarks/bench_peer_cache.py``).
"""

import argparse
import hashlib
import json
import os
import random
import subprocess
import sys
import time
from pathlib import Path

from repro import obs
from repro.gridbuffer.client import GridBufferClient
from repro.gridbuffer.protocol import OP_READ, OP_READ_MULTI
from repro.gridbuffer.server import GridBufferServer

LATENCY_S = 0.005          # one-way, injected per origin RPC
MAX_INFLIGHT = 1           # single-channel origin link: one transfer at a time
FULL_BYTES = 6 * 1024 * 1024
FULL_CHUNK = 128 * 1024
SMOKE_BYTES = 512 * 1024
SMOKE_CHUNK = 64 * 1024
FOLLOWER_COUNTS = (2, 4, 8)
MIN_SPEEDUP = 3.0
SEED = 20260808

_REPO_ROOT = Path(__file__).resolve().parents[1]


def _payload(n_bytes: int) -> bytes:
    return random.Random(SEED).randbytes(n_bytes)


def _origin_read_ops() -> float:
    """Origin-side gb.read/gb.read_multi dispatches (any status)."""
    fam = obs.snapshot().get("rpc_server_requests_total", {})
    return sum(
        s["value"]
        for s in fam.get("series", [])
        if s["labels"].get("op") in (OP_READ, OP_READ_MULTI)
    )


def _peer_metric(snap: dict, family: str) -> float:
    return sum(s["value"] for s in snap.get(family, {}).get("series", []))


# ---------------------------------------------------------------------------
# Subprocess reader entry (--role leader|follower)
# ---------------------------------------------------------------------------


def _reader_main(args: argparse.Namespace) -> None:
    expect = args.sha
    client = GridBufferClient(args.host, args.port, timeout=60.0)
    try:
        if args.role == "follower":
            print("UP", flush=True)
            sys.stdin.readline()  # GO
        t0 = time.perf_counter()
        c0 = time.process_time()
        reader = client.open_reader(
            args.stream,
            read_ahead=True,
            read_ahead_bytes=args.chunk,
            read_ahead_depth=2,
            peer_cache=args.peer,
        )
        hasher = hashlib.sha256()
        got = 0
        while got < args.bytes:
            block = reader.read(min(args.chunk, args.bytes - got))
            if not block:
                break
            hasher.update(block)
            got += len(block)
        elapsed = time.perf_counter() - t0
        if args.role == "leader":
            # Stay alive serving gb.peer_read; make the final cached
            # ranges visible to peers before the followers register.
            reader.flush_advertisements()
            ok = got == args.bytes and hasher.hexdigest() == expect
            print(f"READY {json.dumps({'ok': ok})}", flush=True)
            sys.stdin.readline()  # EXIT
        else:
            snap = obs.snapshot()
            stats = {
                "ok": got == args.bytes and hasher.hexdigest() == expect,
                "bytes": got,
                "elapsed_s": round(elapsed, 5),
                "cpu_s": round(time.process_time() - c0, 5),
                "peer_hits": reader.peer_hits,
                "peer_bytes": _peer_metric(snap, "peer_fetch_bytes_total"),
            }
            print(f"RESULT {json.dumps(stats)}", flush=True)
        reader.close()
    finally:
        client.close()


def _spawn(role: str, addr, stream: str, n_bytes: int, chunk: int, sha: str, peer: bool):
    cmd = [
        sys.executable,
        str(Path(__file__).resolve()),
        "--role", role,
        "--host", addr[0],
        "--port", str(addr[1]),
        "--stream", stream,
        "--bytes", str(n_bytes),
        "--chunk", str(chunk),
        "--sha", sha,
    ]
    if peer:
        cmd.append("--peer")
    env = dict(os.environ)
    env["PYTHONPATH"] = str(_REPO_ROOT / "src") + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        cmd,
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        cwd=str(_REPO_ROOT),
    )


def _await_line(proc, prefix: str, what: str) -> dict:
    line = proc.stdout.readline()
    while line and not line.startswith(prefix):
        line = proc.stdout.readline()  # skip any stray output
    if not line:
        raise RuntimeError(f"{what} exited early: {proc.stderr.read()[-2000:]}")
    rest = line[len(prefix):].strip()
    return json.loads(rest) if rest else {}


# ---------------------------------------------------------------------------
# One arm: leader warms the cache, N followers read concurrently
# ---------------------------------------------------------------------------


def run_arm(server, peer: bool, n_followers: int, n_bytes: int, chunk: int) -> dict:
    stream = f"bc-{'peer' if peer else 'origin'}-{n_followers}"
    data = _payload(n_bytes)
    sha = hashlib.sha256(data).hexdigest()
    addr = server.address
    ctl = GridBufferClient(*addr, timeout=60.0)
    leader = followers = []
    try:
        writer = ctl.open_writer(
            stream,
            n_readers=1 + n_followers,
            capacity_bytes=2 * n_bytes,
            coalesce_bytes=256 * 1024,
        )
        writer.write(data)
        writer.close()

        leader = _spawn("leader", addr, stream, n_bytes, chunk, sha, peer)
        ready = _await_line(leader, "READY ", "leader")
        assert ready.get("ok"), "leader read back wrong bytes"

        followers = [
            _spawn("follower", addr, stream, n_bytes, chunk, sha, peer)
            for _ in range(n_followers)
        ]
        for proc in followers:
            _await_line(proc, "UP", "follower")
        ops_before = _origin_read_ops()
        t0 = time.perf_counter()
        for proc in followers:
            proc.stdin.write("GO\n")
            proc.stdin.flush()
        results = [_await_line(proc, "RESULT ", "follower") for proc in followers]
        wall = time.perf_counter() - t0
        origin_ops = _origin_read_ops() - ops_before

        leader.stdin.write("EXIT\n")
        leader.stdin.flush()
        leader.wait(timeout=30)
        for proc in followers:
            proc.wait(timeout=30)
        ctl.drop_stream(stream)
    finally:
        for proc in [leader, *followers] if leader else followers:
            if proc and proc.poll() is None:
                proc.kill()
        ctl.close()

    assert all(r["ok"] for r in results), f"follower byte mismatch: {results}"
    agg_mb_s = n_followers * n_bytes / wall / 1e6
    return {
        "arm": "peer" if peer else "origin",
        "followers": n_followers,
        "bytes_per_reader": n_bytes,
        "wall_s": round(wall, 4),
        "aggregate_mb_s": round(agg_mb_s, 2),
        "origin_read_ops": origin_ops,
        "peer_hits": sum(r["peer_hits"] for r in results),
        "peer_bytes": sum(r["peer_bytes"] for r in results),
    }


# ---------------------------------------------------------------------------
# Driver
# ---------------------------------------------------------------------------


def run(smoke: bool = False, write_json: bool = True) -> dict:
    n_bytes = SMOKE_BYTES if smoke else FULL_BYTES
    chunk = SMOKE_CHUNK if smoke else FULL_CHUNK
    counts = (2,) if smoke else FOLLOWER_COUNTS
    with GridBufferServer(
        simulated_latency=LATENCY_S,
        max_inflight=MAX_INFLIGHT,
        # The cap models the *data channel* — bulk reads queue for the
        # single transfer slot, while small control frames (acks,
        # holder advertisements, registration) only pay the latency.
        inflight_ops=(OP_READ, OP_READ_MULTI),
    ) as server:
        # A broadcast origin hints the whole file span: the stream is
        # finite and pre-written, so there is no fresher range to save
        # the hint budget for.
        server.HINT_WINDOW = n_bytes
        arms = []
        if not smoke:
            arms.append(run_arm(server, False, max(counts), n_bytes, chunk))
        for n in counts:
            arms.append(run_arm(server, True, n, n_bytes, chunk))

    for arm in arms:
        print(
            f"{arm['arm']:>6} x{arm['followers']}: {arm['aggregate_mb_s']:8.2f} MB/s "
            f"aggregate, {arm['origin_read_ops']:5.0f} origin read ops, "
            f"{arm['peer_hits']:4d} peer hits"
        )

    def arm_of(name, n):
        return next(a for a in arms if a["arm"] == name and a["followers"] == n)

    out = {
        "bench": "peer_cache_broadcast",
        "smoke": smoke,
        "origin_latency_ms": LATENCY_S * 1e3,
        "origin_max_inflight": MAX_INFLIGHT,
        "chunk": chunk,
        "arms": arms,
    }

    if smoke:
        peer2 = arm_of("peer", 2)
        assert peer2["peer_hits"] > 0, "smoke run never fetched from a peer"
        assert peer2["peer_bytes"] > 0, "smoke run moved no bytes via peers"
    else:
        top = max(counts)
        origin_top = arm_of("origin", top)
        peer_top = arm_of("peer", top)
        peer_low = arm_of("peer", min(counts))
        speedup = peer_top["aggregate_mb_s"] / origin_top["aggregate_mb_s"]
        out["speedup_at_top"] = round(speedup, 2)
        out["min_speedup"] = MIN_SPEEDUP
        print(f"speedup at {top} readers: {speedup:.2f}x (floor {MIN_SPEEDUP}x)")
        assert speedup >= MIN_SPEEDUP, (
            f"peer arm only {speedup:.2f}x the origin-only arm at {top} readers "
            f"(need >= {MIN_SPEEDUP}x)"
        )
        # The scaling story: doubling readers must not double the load
        # on the constrained origin.  Small additive slack absorbs
        # stragglers (a window probe racing a hint refresh).
        assert peer_top["origin_read_ops"] <= peer_low["origin_read_ops"] + top, (
            f"peer-arm origin reads grew {peer_low['origin_read_ops']:.0f} -> "
            f"{peer_top['origin_read_ops']:.0f} from {min(counts)} to {top} readers"
        )
        assert peer_top["peer_hits"] > 0, "peer arm never fetched from a peer"

    if write_json:
        path = _REPO_ROOT / "BENCH_peer_cache.json"
        path.write_text(json.dumps(out, indent=2) + "\n")
        print(f"wrote {path}")
    return out


def test_peer_cache():
    run(smoke=False)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--smoke", action="store_true", help="CI mode: 2 followers, small file, correctness only")
    parser.add_argument("--no-json", action="store_true", help="skip writing BENCH_peer_cache.json")
    # Internal: subprocess reader entry.
    parser.add_argument("--role", choices=("leader", "follower"))
    parser.add_argument("--host")
    parser.add_argument("--port", type=int)
    parser.add_argument("--stream")
    parser.add_argument("--bytes", type=int)
    parser.add_argument("--chunk", type=int)
    parser.add_argument("--sha")
    parser.add_argument("--peer", action="store_true")
    args = parser.parse_args()
    if args.role:
        _reader_main(args)
        return
    run(smoke=args.smoke, write_json=not args.no_json)


if __name__ == "__main__":
    main()
