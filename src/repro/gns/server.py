"""The GriddLeS Name Service — now a live control plane.

Historically the FM treated the GNS as a read-only database loaded
once per run.  Since PR 10 the :class:`NameService` fronts a
:class:`~repro.gns.store.RecordStore`: records are versioned per
namespace, mutations are atomic transactions, and running clients
subscribe to changes — so re-wiring a workflow really is *only* a
matter of changing entries here (the paper's headline flexibility
claim), and it takes effect on streams that are already open.

:class:`GnsServer` exposes the service over the framed RPC protocol.
Besides the legacy ops it serves:

* ``gns.txn`` — atomic multi-record transactions with a dedupe token
  (safe to retry over a redial);
* ``gns.watch`` — a native-async long-poll on the process-wide loop: a
  parked watch costs no thread, wakes on the next commit via a
  :class:`~repro.transport.aio.LoopSignal`, and a client that
  reconnects after server death resumes from its last seen revision;
* per-namespace bearer tokens, checked on every op that names a
  namespace.  Old peers send no ``ns``/``auth`` header and silently
  land in the (untokened by default) ``default`` namespace — the same
  skew discipline as the ``_wire``/``_trace`` header fields.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional, Tuple

from ..transport.aio import LoopSignal
from ..transport.tcp import RpcError, RpcServer
from .matcher import ConnectionMatcher, ServerLocator, StreamBinding
from .records import GnsRecord, IOMode
from .store import DEFAULT_NAMESPACE, GnsAuthError, RecordStore

__all__ = ["NameService", "GnsServer"]

#: Server-side cap on a single watch long-poll, seconds.  Clients poll
#: again on an empty batch, so a short cap only costs an extra
#: round-trip — it also bounds how long a parked handler can outlive a
#: dead connection.
WATCH_BUDGET_CAP = 30.0


class NameService:
    """Versioned GNS database plus the direct-connection matcher.

    The record API keeps its original single-namespace shape
    (``add``/``remove``/``resolve`` default to the ``default``
    namespace) and adds the control-plane surface: ``txn``,
    ``changes_since``/``wait_changes``, ``compact``, ``revision`` and
    token management, all namespace-scoped.
    """

    def __init__(
        self,
        locate_buffer_server: Optional[ServerLocator] = None,
        store: Optional[RecordStore] = None,
        db_path: str = ":memory:",
    ):
        self.store = store if store is not None else RecordStore(db_path)
        self.matcher = ConnectionMatcher(locate_buffer_server)

    # -- record management -------------------------------------------------
    def add(self, record: GnsRecord, ns: str = DEFAULT_NAMESPACE) -> None:
        self.store.txn([("add", record)], ns=ns)

    def add_all(self, records: List[GnsRecord], ns: str = DEFAULT_NAMESPACE) -> None:
        self.store.txn([("add", r) for r in records], ns=ns)

    def remove(self, machine: str, path: str, ns: str = DEFAULT_NAMESPACE) -> int:
        """Remove records with exactly this (machine, path) pattern."""
        present = sum(
            1 for r in self.store.records(ns) if r.machine == machine and r.path == path
        )
        if present:
            self.store.txn([("remove", machine, path)], ns=ns)
        return present

    def clear(self, ns: str = DEFAULT_NAMESPACE) -> None:
        pairs = {(r.machine, r.path) for r in self.store.records(ns)}
        if pairs:
            self.store.txn([("remove", m, p) for m, p in sorted(pairs)], ns=ns)

    def records(self, ns: str = DEFAULT_NAMESPACE) -> List[GnsRecord]:
        return self.store.records(ns)

    # -- control plane -----------------------------------------------------
    def txn(
        self,
        ops: List[Any],
        ns: str = DEFAULT_NAMESPACE,
        token: Optional[str] = None,
    ) -> int:
        """Atomically apply add/remove operations; return the new revision."""
        return self.store.txn(ops, ns=ns, token=token)

    def revision(self, ns: str = DEFAULT_NAMESPACE) -> int:
        return self.store.revision(ns)

    def changes_since(self, ns: str, from_revision: int):
        return self.store.changes_since(ns, from_revision)

    def wait_changes(self, ns: str, from_revision: int, timeout: float):
        return self.store.wait_changes(ns, from_revision, timeout)

    def compact(self, ns: str = DEFAULT_NAMESPACE) -> int:
        return self.store.compact(ns)

    def set_token(self, ns: str, token: Optional[str]) -> None:
        self.store.set_token(ns, token)

    def check_token(self, ns: str, token: Optional[str]) -> None:
        self.store.check_token(ns, token)

    # -- resolution ----------------------------------------------------------
    def resolve(self, machine: str, path: str, ns: str = DEFAULT_NAMESPACE) -> GnsRecord:
        """Find the best record for an OPEN of ``path`` on ``machine``.

        Most-specific match wins (exact machine beats glob, then exact
        path); among equals the most recently added wins, so overrides
        can be layered.  With no match at all, the FM's contract is
        plain local IO, expressed as a synthesized LOCAL record.

        The candidate scan runs over one atomic snapshot of the record
        set, so a concurrent ``txn`` that replaces a record (remove +
        add in one batch) can never leave a resolver observing the gap
        between the two halves.
        """
        entries = self.store.entries(ns)
        candidates = [rec for _, rec in entries if rec.matches(machine, path)]
        if not candidates:
            return GnsRecord(machine=machine, path=path, mode=IOMode.LOCAL)
        best_idx = max(
            range(len(candidates)),
            key=lambda i: (candidates[i].specificity(), i),
        )
        return candidates[best_idx]

    # -- direct-connection matching ---------------------------------------------
    def announce(self, stream: str, role: str, machine: str, placement: str = "reader") -> StreamBinding:
        return self.matcher.announce(stream, role, machine, placement)

    def pin_stream(self, stream: str, host: str, port: int, placement: str = "reader") -> StreamBinding:
        return self.matcher.pin(stream, host, port, placement)


class GnsServer:
    """TCP front end for a :class:`NameService` (see module docstring)."""

    def __init__(
        self,
        service: Optional[NameService] = None,
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        self.service = service if service is not None else NameService()
        self._signals: Dict[str, LoopSignal] = {}
        self._signals_lock = threading.Lock()
        self.service.store.add_listener(self._on_change)
        self._rpc = self._new_rpc(host, port)
        self._register_ops(self._rpc)

    def _new_rpc(self, host: str, port: int) -> RpcServer:
        return RpcServer(host, port)

    def _register_ops(self, rpc: RpcServer) -> None:
        rpc.register("gns.resolve", self._op_resolve)
        rpc.register("gns.add", self._op_add)
        rpc.register("gns.remove", self._op_remove)
        rpc.register("gns.list", self._op_list)
        rpc.register("gns.announce", self._op_announce)
        rpc.register("gns.pin", self._op_pin)
        rpc.register("gns.txn", self._op_txn)
        rpc.register_async("gns.watch", self._op_watch)

    @property
    def address(self) -> Tuple[str, int]:
        return self._rpc.address

    def start(self) -> "GnsServer":
        self._rpc.start()
        return self

    def stop(self) -> None:
        self._rpc.stop()

    def disconnect_all(self) -> None:
        self._rpc.disconnect_all()

    def restart(self) -> "GnsServer":
        """Crash-and-rebind on the same port; the store survives.

        Parked watch handlers die with their connections; clients
        redial (``gns.watch`` is idempotent) and resume from their last
        seen revision, so no change event is lost or duplicated.
        """
        host, port = self.address
        self._rpc.stop()
        self._rpc.disconnect_all()
        self._rpc = self._new_rpc(host, port)
        self._register_ops(self._rpc)
        self._rpc.start()
        return self

    def __enter__(self) -> "GnsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- auth ---------------------------------------------------------------
    def _scope(self, header: Dict[str, Any]) -> str:
        """Namespace + token check for one request; returns the namespace."""
        ns = str(header.get("ns", DEFAULT_NAMESPACE))
        try:
            self.service.check_token(ns, header.get("auth"))
        except GnsAuthError as exc:
            raise RpcError("auth", str(exc)) from exc
        return ns

    def _on_change(self, ns: str, _revision: int) -> None:
        with self._signals_lock:
            signal = self._signals.get(ns)
        if signal is not None:
            signal.notify()

    def _signal(self, ns: str) -> LoopSignal:
        with self._signals_lock:
            signal = self._signals.get(ns)
            if signal is None:
                signal = self._signals[ns] = LoopSignal(asyncio.get_running_loop())
            return signal

    # -- handlers -----------------------------------------------------------
    def _op_resolve(self, header: Dict[str, Any], _payload: bytes):
        ns = self._scope(header)
        record = self.service.resolve(header["machine"], header["path"], ns=ns)
        return {"record": record.to_dict()}, b""

    def _op_add(self, header: Dict[str, Any], _payload: bytes):
        ns = self._scope(header)
        try:
            record = GnsRecord.from_dict(header["record"])
        except (TypeError, ValueError) as exc:
            raise RpcError("bad-record", str(exc)) from exc
        self.service.add(record, ns=ns)
        return {}, b""

    def _op_remove(self, header: Dict[str, Any], _payload: bytes):
        ns = self._scope(header)
        removed = self.service.remove(header["machine"], header["path"], ns=ns)
        return {"removed": removed}, b""

    def _op_list(self, header: Dict[str, Any], _payload: bytes):
        ns = self._scope(header)
        return {"records": [r.to_dict() for r in self.service.records(ns)]}, b""

    def _op_txn(self, header: Dict[str, Any], _payload: bytes):
        ns = self._scope(header)
        try:
            revision = self.service.txn(
                list(header.get("ops") or []), ns=ns, token=header.get("token")
            )
        except (TypeError, ValueError, KeyError) as exc:
            raise RpcError("bad-txn", str(exc)) from exc
        return {"revision": revision}, b""

    async def _op_watch(self, header: Dict[str, Any], _payload: bytes):
        """Long-poll the change log; native-async so parks are free.

        ``from_revision < 0`` is a revision probe: it answers
        immediately with the current revision and no events.  Otherwise
        the handler returns as soon as changes past ``from_revision``
        exist (possibly a compaction reset), or an empty batch once the
        poll budget lapses — the client then re-polls, which doubles as
        its liveness check.
        """
        ns = self._scope(header)
        from_revision = int(header.get("from_revision", -1))
        budget = min(float(header.get("timeout", 10.0)), WATCH_BUDGET_CAP)
        if from_revision < 0:
            return {
                "events": [],
                "revision": self.service.revision(ns),
                "reset": False,
            }, b""
        signal = self._signal(ns)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + max(0.0, budget)
        while True:
            signal.clear()
            events, revision, reset = self.service.changes_since(ns, from_revision)
            if events or reset:
                return {"events": events, "revision": revision, "reset": reset}, b""
            remaining = deadline - loop.time()
            if remaining <= 0:
                return {"events": [], "revision": revision, "reset": False}, b""
            await signal.wait(remaining)

    def _op_announce(self, header: Dict[str, Any], _payload: bytes):
        binding = self.service.announce(
            header["stream"],
            header["role"],
            header["machine"],
            header.get("placement", "reader"),
        )
        return {
            "host": binding.host,
            "port": binding.port,
            "located": binding.located,
            "placement": binding.placement,
        }, b""

    def _op_pin(self, header: Dict[str, Any], _payload: bytes):
        binding = self.service.pin_stream(
            header["stream"],
            header["host"],
            int(header["port"]),
            header.get("placement", "reader"),
        )
        return {"host": binding.host, "port": binding.port, "located": binding.located}, b""
