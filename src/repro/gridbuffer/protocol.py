"""Wire-protocol constants for the Grid Buffer service.

The paper's implementation used SOAP over Web Services; we keep the
role (self-describing messages on one firewall-friendly channel) on the
framed-JSON RPC layer.  Block size defaults to 4096 bytes — the typical
write size the paper reports for the climate models.
"""

from __future__ import annotations

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "DEFAULT_CAPACITY",
    "DEFAULT_READ_BUDGET",
    "OP_CREATE",
    "OP_REGISTER_READER",
    "OP_WRITE",
    "OP_WRITE_MULTI",
    "OP_READ",
    "OP_READ_MULTI",
    "OP_CONSUME",
    "OP_CONSUME_MULTI",
    "OP_CLOSE_WRITER",
    "OP_STATS",
    "OP_DROP",
    "OP_EXISTS",
    "OP_ABORT",
    "OP_RESUME",
    "OP_HIGH_WATER",
    "OP_PEER_READ",
]

#: Typical legacy-application write granularity (paper Section 5.3).
DEFAULT_BLOCK_SIZE = 4096

#: Default per-stream table capacity; bounded so backpressure exists.
DEFAULT_CAPACITY = 32 * 1024 * 1024

#: Default byte budget for a windowed (vectored) read.
DEFAULT_READ_BUDGET = DEFAULT_BLOCK_SIZE * 16

OP_CREATE = "gb.create"
OP_REGISTER_READER = "gb.register_reader"
OP_WRITE = "gb.write"
OP_READ = "gb.read"
OP_CLOSE_WRITER = "gb.close_writer"
OP_STATS = "gb.stats"
OP_DROP = "gb.drop"
OP_EXISTS = "gb.exists"
OP_ABORT = "gb.abort"
OP_RESUME = "gb.resume"
OP_HIGH_WATER = "gb.high_water"

# -- vectored fast-path ops (PR 3) ---------------------------------------
# Frames stay JSON-header + binary payload; these ops just move more
# per round trip.  An old server replies "unknown-op" and clients fall
# back to the per-block ops above, so both directions stay compatible.

#: Scatter several blocks in one frame.  Header: ``name``, ``offsets``
#: (list), ``sizes`` (list, same length); payload is the blocks
#: concatenated in order.  Reply: ``{"written": total}``.
OP_WRITE_MULTI = "gb.write_multi"

#: Windowed read: return as many contiguous bytes as are available at
#: ``offset`` up to ``budget`` in one reply (blocking only while
#: nothing is available, like ``gb.read``).  Header additionally
#: carries ``min_bytes`` (wait until at least this much is available
#: or the window/EOF bounds it).  Reply: ``{"eof": bool, "total": int
#: | null}`` — ``total`` is the stream length once the writer closed,
#: letting clients stop scheduling read-ahead past EOF.
OP_READ_MULTI = "gb.read_multi"

#: Mark byte ranges consumed for a reader *without* transferring them
#: (the reader got the bytes from a co-located reader's fetch).
#: Header: ``name``, ``reader_id``, ``ranges`` (list of [start, end)).
#: Keeps delete-on-read GC and per-reader lag gauges exact when a
#: shared client-side cache dedupes broadcast reads.
OP_CONSUME = "gb.consume"

#: Batched ``gb.consume`` covering several readers in one frame.
#: Header: ``name``, ``entries`` — a list of ``[reader_id, ranges]``
#: pairs (ranges as for ``gb.consume``).  Emitted by the shared-cache
#: ack aggregator so co-located readers pay one round trip and one
#: server-side GC pass per flush instead of one each.  An old server
#: replies "unknown-op" and the client falls back to per-reader
#: ``gb.consume`` (capability probe, like the vectored ops).
OP_CONSUME_MULTI = "gb.consume_multi"

# -- cooperative block cache (PR 8) ---------------------------------------

#: Serve a cached run from a *reader process's* shared block cache —
#: the only Grid Buffer op answered by peers instead of the origin.
#: Header: ``origin`` ("host:port" of the origin server the cache
#: mirrors), ``name``, ``gen`` (stream generation), ``offset``,
#: ``length``.  Reply payload is the available prefix of the requested
#: range (never blocks, never waits for the writer) plus ``crc``
#: (masked zlib.crc32 of the payload, :func:`repro.ioutil.crc32`) so
#: the fetcher can verify integrity before trusting a peer; a range the
#: cache does not cover is a ``peer-miss`` error.  The serving cache
#: re-verifies each run against its insert-time checksum before
#: answering, so a run that rotted in the holder's memory becomes a
#: miss rather than a poisoned reply (PR 9).  Correctness never depends
#: on this op: any error, timeout or checksum/length mismatch demotes
#: the peer and the fetcher re-requests from the origin.
OP_PEER_READ = "gb.peer_read"
