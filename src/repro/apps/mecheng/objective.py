"""OBJECTIVE: the design figure of merit.

"The final output, RESULT.DAT, contains the value for the life of the
design, which is the minimum time for any of the cracks to reach a
certain length."  Reads JOB.LIFE and writes the worst-crack life (and
its boundary index) to RESULT.DAT.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["design_life", "run_objective"]


def design_life(lives: np.ndarray) -> tuple[float, int]:
    """(minimum finite life, index of the critical crack).

    Raises if no crack has a finite life (nothing would ever fail,
    which for this workload means the stress input was degenerate).
    """
    lives = np.asarray(lives, dtype=float)
    if lives.size == 0:
        raise ValueError("empty life array")
    finite = np.isfinite(lives)
    if not finite.any():
        raise ValueError("no crack has finite life; check stress inputs")
    idx = int(np.argmin(np.where(finite, lives, math.inf)))
    return float(lives[idx]), idx


def run_objective(io) -> None:
    """Stage entry point: JOB.LIFE → RESULT.DAT."""
    with io.open("JOB.LIFE", "r") as fh:
        n = int(fh.readline())
        lives = np.array([float(fh.readline()) for _ in range(n)])
    life, idx = design_life(lives)
    with io.open("RESULT.DAT", "w") as fh:
        fh.write(f"{life:.9e} {idx}\n")
