"""Unit + property tests for the XDR-style neutral record encoding."""

import struct
import sys

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.heterogeneity import (
    NATIVE_BYTE_ORDER,
    FieldType,
    HeterogeneityError,
    RecordSchema,
    needs_swap,
)


def schema() -> RecordSchema:
    return RecordSchema(
        [
            FieldType("step", "int32"),
            FieldType("flags", "uint32"),
            FieldType("values", "float64", 3),
            FieldType("count", "int64"),
        ]
    )


class TestFieldType:
    def test_unknown_kind_rejected(self):
        with pytest.raises(HeterogeneityError):
            FieldType("x", "complex128")

    def test_count_validation(self):
        with pytest.raises(HeterogeneityError):
            FieldType("x", "int32", count=0)

    def test_struct_code(self):
        assert FieldType("x", "float32").struct_code == "f"
        assert FieldType("x", "float64", 4).struct_code == "4d"


class TestRecordSchema:
    def test_empty_schema_rejected(self):
        with pytest.raises(HeterogeneityError):
            RecordSchema([])

    def test_duplicate_names_rejected(self):
        with pytest.raises(HeterogeneityError):
            RecordSchema([FieldType("a", "int32"), FieldType("a", "int64")])

    def test_record_size(self):
        assert schema().record_size == 4 + 4 + 24 + 8

    def test_pack_unpack_roundtrip(self):
        s = schema()
        rec = {"step": -5, "flags": 7, "values": (1.5, -2.5, 3.25), "count": 2**40}
        assert s.unpack_native(s.pack_native(rec)) == rec

    def test_missing_field_rejected(self):
        with pytest.raises(HeterogeneityError, match="missing field"):
            schema().pack_native({"step": 1})

    def test_wrong_array_length_rejected(self):
        with pytest.raises(HeterogeneityError, match="expects 3 values"):
            schema().pack_native(
                {"step": 1, "flags": 0, "values": (1.0,), "count": 0}
            )

    def test_wrong_size_unpack_rejected(self):
        with pytest.raises(HeterogeneityError):
            schema().unpack_native(b"\x00" * 3)

    def test_neutral_is_big_endian(self):
        s = RecordSchema([FieldType("x", "uint32")])
        raw = s.pack_native({"x": 0x01020304})
        neutral = s.to_neutral(raw)
        assert neutral == b"\x01\x02\x03\x04"

    def test_neutral_roundtrip(self):
        s = schema()
        rec = {"step": 42, "flags": 0xDEAD, "values": (0.1, 0.2, 0.3), "count": -9}
        raw = s.pack_native(rec)
        assert s.from_neutral(s.to_neutral(raw)) == raw

    def test_multiple_records_transcoded(self):
        s = RecordSchema([FieldType("x", "int32")])
        raw = s.pack_native({"x": 1}) + s.pack_native({"x": 2})
        neutral = s.to_neutral(raw)
        assert len(neutral) == 8
        assert s.from_neutral(neutral) == raw

    def test_partial_record_payload_rejected(self):
        s = RecordSchema([FieldType("x", "int64")])
        with pytest.raises(HeterogeneityError, match="multiple"):
            s.to_neutral(b"\x00" * 12)

    def test_simulated_foreign_writer(self):
        """A 'big-endian writer' produces neutral bytes directly; a
        little-endian reader must recover the same values."""
        s = RecordSchema([FieldType("a", "int32"), FieldType("b", "float64")])
        wire = struct.pack(">id", 77, 2.5)  # what a BE machine would send
        native = s.from_neutral(wire)
        assert s.unpack_native(native) == {"a": 77, "b": 2.5}

    @given(
        step=st.integers(min_value=-(2**31), max_value=2**31 - 1),
        flags=st.integers(min_value=0, max_value=2**32 - 1),
        values=st.tuples(
            *(st.floats(allow_nan=False, allow_infinity=False, width=64) for _ in range(3))
        ),
        count=st.integers(min_value=-(2**63), max_value=2**63 - 1),
    )
    @settings(max_examples=100, deadline=None)
    def test_neutral_roundtrip_property(self, step, flags, values, count):
        s = schema()
        rec = {"step": step, "flags": flags, "values": values, "count": count}
        raw = s.pack_native(rec)
        back = s.unpack_native(s.from_neutral(s.to_neutral(raw)))
        assert back["step"] == step
        assert back["flags"] == flags
        assert back["count"] == count
        assert back["values"] == values


class TestNeedsSwap:
    def test_same_order_passthrough(self):
        assert not needs_swap("little", "little")
        assert not needs_swap("big", "big")

    def test_cross_order_swaps(self):
        assert needs_swap("little", "big")
        assert needs_swap("big", "little")

    def test_invalid_order_rejected(self):
        with pytest.raises(HeterogeneityError):
            needs_swap("middle", "little")

    def test_native_order_constant(self):
        assert NATIVE_BYTE_ORDER == sys.byteorder
