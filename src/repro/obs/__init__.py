"""Unified observability: metrics registry + span tracing (``repro.obs``).

The paper's FM sat on Bypass partly because interception gives
*inspection* — GriddLeS could watch every IO call a legacy binary made
and feed measured link numbers back into mode selection (§3.1).  This
package is that inspection layer grown up: one process-wide
:class:`~repro.obs.metrics.MetricsRegistry` (counters, gauges,
histograms with labels) plus one hierarchical span
:class:`~repro.obs.spans.Tracer`, shared by the FM, the transports,
the Grid Buffer and the workflow runner.

Quick start::

    from repro import obs

    OPS = obs.counter("myapp_ops_total", "operations", labelnames=("op",))
    OPS.labels(op="read").inc()

    with obs.span("workflow", workflow="climate"):
        with obs.span("task", task="ccam"):
            ...

    print(obs.render_text())          # Prometheus-style exposition
    snap = obs.snapshot()             # JSON-embeddable dict

Trace files (``obs.configure(obs.JsonLinesSink(path))``) are rendered
into per-task timelines and per-peer link tables by
``python -m repro.obs.report``.
"""

from __future__ import annotations

from typing import Any, Dict, Optional, Sequence

from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    MetricsError,
    MetricsRegistry,
    disabled,
    get_registry,
)
from .spans import (
    JsonLinesSink,
    MemorySink,
    Span,
    SpanContext,
    Tracer,
    context_from_wire,
    get_tracer,
)

__all__ = [
    "MetricsError",
    "MetricsRegistry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "DEFAULT_BUCKETS",
    "get_registry",
    "disabled",
    "counter",
    "gauge",
    "histogram",
    "snapshot",
    "render_text",
    "value",
    "reset",
    "Tracer",
    "Span",
    "SpanContext",
    "JsonLinesSink",
    "MemorySink",
    "get_tracer",
    "context_from_wire",
    "span",
    "event",
    "configure",
    "current_context",
    "attach",
    "write_metrics",
]


# -- default-registry conveniences ------------------------------------------
def counter(name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
    """Declare (or fetch) a counter on the default registry."""
    return get_registry().counter(name, help, labelnames)


def gauge(name: str, help: str = "", labelnames: Sequence[str] = ()) -> MetricFamily:
    """Declare (or fetch) a gauge on the default registry."""
    return get_registry().gauge(name, help, labelnames)


def histogram(
    name: str,
    help: str = "",
    labelnames: Sequence[str] = (),
    buckets: Sequence[float] = DEFAULT_BUCKETS,
) -> MetricFamily:
    """Declare (or fetch) a histogram on the default registry."""
    return get_registry().histogram(name, help, labelnames, buckets)


def snapshot() -> Dict[str, Any]:
    """Snapshot of the default registry (JSON-serialisable dict)."""
    return get_registry().snapshot()


def render_text() -> str:
    """Prometheus-style text exposition of the default registry."""
    return get_registry().render_text()


def value(name: str, labels: Optional[Dict[str, str]] = None) -> Optional[float]:
    """Current value of one default-registry series (None if absent)."""
    return get_registry().value(name, labels)


def reset() -> None:
    """Zero every series in the default registry (test isolation).

    Families stay registered (instrumented modules bind them at import
    time); only their labelled series are dropped and lazily recreated.
    """
    get_registry().reset()


# -- default-tracer conveniences ---------------------------------------------
def span(name: str, parent: Optional[SpanContext] = None, **attrs: Any):
    """Open a span on the default tracer (context manager)."""
    return get_tracer().span(name, parent=parent, **attrs)


def event(name: str, **attrs: Any) -> None:
    """Emit a point event on the default tracer (no-op without a sink)."""
    get_tracer().event(name, **attrs)


def configure(sink: Optional[Any]) -> Optional[Any]:
    """Set the default tracer's sink; returns the previous one."""
    return get_tracer().configure(sink)


def current_context() -> Optional[SpanContext]:
    """The default tracer's innermost active span on this thread."""
    return get_tracer().current_context()


def attach(context: Optional[SpanContext]):
    """Adopt a captured span context on this thread (context manager)."""
    return get_tracer().attach(context)


def write_metrics() -> None:
    """Embed a default-registry snapshot record into the trace stream."""
    get_tracer().write_metrics(get_registry())
