"""Tests for simulated NWS probing and changing network weather."""

import pytest

from repro.grid.nws import NetworkWeatherService
from repro.grid.probes import ProbeDaemon
from repro.sim.engine import Environment
from repro.sim.netsim import LinkSpec, Network


def make_net(env):
    net = Network(env)
    net.connect("a", "b", LinkSpec(bandwidth=10e6, latency=0.01))
    net.connect("c", "b", LinkSpec(bandwidth=2e6, latency=0.05))
    return net


class TestProbeDaemon:
    def test_probes_populate_nws(self):
        env = Environment()
        net = make_net(env)
        nws = NetworkWeatherService()
        daemon = ProbeDaemon(env, net, nws, [("a", "b"), ("c", "b")], interval=10.0)
        daemon.start(horizon=100.0)
        env.run()
        assert daemon.probes_sent == 2 * 10
        assert nws.forecast("a", "b").bandwidth == pytest.approx(10e6)
        assert nws.forecast("c", "b").latency == pytest.approx(0.05)

    def test_noise_is_deterministic_per_seed(self):
        def run(seed):
            env = Environment()
            net = make_net(env)
            nws = NetworkWeatherService()
            ProbeDaemon(env, net, nws, [("a", "b")], interval=5.0, noise=0.3, seed=seed).start(
                horizon=50.0
            )
            env.run()
            return nws.last("a", "b").bandwidth

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_validation(self):
        env = Environment()
        net = make_net(env)
        nws = NetworkWeatherService()
        with pytest.raises(ValueError):
            ProbeDaemon(env, net, nws, [], interval=0)
        with pytest.raises(ValueError):
            ProbeDaemon(env, net, nws, [], noise=-1)
        daemon = ProbeDaemon(env, net, nws, [("a", "b")])
        daemon.start(horizon=10.0)
        with pytest.raises(RuntimeError):
            daemon.start(horizon=10.0)


class TestChangingWeather:
    def test_set_spec_changes_future_transfers(self):
        env = Environment()
        net = make_net(env)
        done = []

        def transfer(tag):
            yield net.message("a", "b", 10_000_000)
            done.append((tag, env.now))

        def controller():
            yield env.timeout(5.0)
            net.set_spec("a", "b", LinkSpec(bandwidth=1e6, latency=0.01))
            env.process(transfer("after"), name="after")

        env.process(transfer("before"), name="before")
        env.process(controller(), name="ctl")
        env.run()
        times = dict(done)
        # before: 10 MB at 10 MB/s ~ 1 s; after: starts at 5, 10 s xfer.
        assert times["before"] == pytest.approx(1.01, rel=0.05)
        assert times["after"] == pytest.approx(15.01, rel=0.05)

    def test_probes_track_degradation_and_flip_best_source(self):
        """End-to-end adaptation in virtual time: NWS probes notice a
        degraded path and best_source flips — the input signal for the
        FM's dynamic replica re-mapping."""
        env = Environment()
        net = make_net(env)
        nws = NetworkWeatherService(window=6)
        daemon = ProbeDaemon(env, net, nws, [("a", "b"), ("c", "b")], interval=10.0)
        daemon.start(horizon=300.0)

        def degrade():
            yield env.timeout(100.0)
            net.set_spec("a", "b", LinkSpec(bandwidth=0.1e6, latency=0.5))

        env.process(degrade(), name="degrade")
        env.run(until=90.0)
        assert nws.best_source(["a", "c"], "b", 50_000_000) == "a"
        env.run()
        assert nws.best_source(["a", "c"], "b", 50_000_000) == "c"
