"""Unit + property tests for simulation resources."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import Environment
from repro.sim.resources import Container, ProcessorSharing, Resource, Store


class TestResource:
    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Resource(env, capacity=0)

    def test_serialises_at_capacity_one(self):
        env = Environment()
        cpu = Resource(env, capacity=1)
        finished = []

        def job(env, t):
            req = cpu.request()
            yield req
            yield env.timeout(t)
            cpu.release(req)
            finished.append(env.now)

        env.process(job(env, 2))
        env.process(job(env, 3))
        env.run()
        assert finished == [2.0, 5.0]

    def test_parallel_within_capacity(self):
        env = Environment()
        cpu = Resource(env, capacity=2)
        finished = []

        def job(env, t):
            req = cpu.request()
            yield req
            yield env.timeout(t)
            cpu.release(req)
            finished.append(env.now)

        for _ in range(2):
            env.process(job(env, 4))
        env.run()
        assert finished == [4.0, 4.0]

    def test_release_without_request_raises(self):
        env = Environment()
        cpu = Resource(env)
        with pytest.raises(Exception):
            cpu.release()

    def test_queue_length_and_cancel(self):
        env = Environment()
        res = Resource(env, capacity=1)
        first = res.request()
        second = res.request()
        assert res.queue_length == 1
        assert res.cancel(second) is True
        assert res.queue_length == 0
        assert res.cancel(second) is False


class TestStore:
    def test_fifo_order(self):
        env = Environment()
        store = Store(env)
        got = []

        def consumer(env):
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        def producer(env):
            for i in range(3):
                yield env.timeout(1)
                store.put(i)

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self):
        env = Environment()
        store = Store(env)
        times = []

        def consumer(env):
            yield store.get()
            times.append(env.now)

        def producer(env):
            yield env.timeout(7)
            store.put("x")

        env.process(consumer(env))
        env.process(producer(env))
        env.run()
        assert times == [7.0]

    def test_bounded_put_blocks(self):
        env = Environment()
        store = Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("a", env.now))
            yield store.put("b")
            log.append(("b", env.now))

        def consumer(env):
            yield env.timeout(5)
            yield store.get()

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert log[0] == ("a", 0.0)
        assert log[1][1] == 5.0

    def test_capacity_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Store(env, capacity=0)


class TestContainer:
    def test_level_tracking(self):
        env = Environment()
        tank = Container(env, init=10.0, capacity=20.0)
        tank.get(4.0)
        assert tank.level == 6.0
        tank.put(2.0)
        assert tank.level == 8.0

    def test_get_blocks_until_available(self):
        env = Environment()
        tank = Container(env, init=0.0)
        times = []

        def taker(env):
            yield tank.get(5.0)
            times.append(env.now)

        def filler(env):
            yield env.timeout(3)
            tank.put(5.0)

        env.process(taker(env))
        env.process(filler(env))
        env.run()
        assert times == [3.0]

    def test_init_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            Container(env, init=-1)
        with pytest.raises(ValueError):
            Container(env, init=5, capacity=4)

    def test_negative_amounts_rejected(self):
        env = Environment()
        tank = Container(env, init=1)
        with pytest.raises(ValueError):
            tank.put(-1)
        with pytest.raises(ValueError):
            tank.get(-1)


class TestProcessorSharing:
    def test_single_job_runs_at_full_speed(self):
        env = Environment()
        ps = ProcessorSharing(env, speed=2.0)
        done_at = []

        def job(env):
            yield ps.compute(10.0)
            done_at.append(env.now)

        env.process(job(env))
        env.run()
        assert done_at == [pytest.approx(5.0)]

    def test_two_equal_jobs_share_equally(self):
        env = Environment()
        ps = ProcessorSharing(env, speed=1.0)
        done_at = []

        def job(env):
            yield ps.compute(5.0)
            done_at.append(env.now)

        env.process(job(env))
        env.process(job(env))
        env.run()
        assert done_at == [pytest.approx(10.0)] * 2

    def test_short_job_departs_then_long_speeds_up(self):
        env = Environment()
        ps = ProcessorSharing(env, speed=1.0)
        done = {}

        def job(env, name, work):
            yield ps.compute(work)
            done[name] = env.now

        env.process(job(env, "short", 2.0))
        env.process(job(env, "long", 10.0))
        env.run()
        # Short: shares until 4.0 (2 work at half rate).  Long then has
        # 8 work left at full rate: finishes at 12.0.
        assert done["short"] == pytest.approx(4.0)
        assert done["long"] == pytest.approx(12.0)

    def test_late_arrival(self):
        env = Environment()
        ps = ProcessorSharing(env, speed=1.0)
        done = {}

        def job(env, name, work, start):
            yield env.timeout(start)
            yield ps.compute(work)
            done[name] = env.now

        env.process(job(env, "a", 10.0, 0.0))
        env.process(job(env, "b", 3.0, 4.0))
        env.run()
        # a runs alone [0,4] (6 left), shares [4,10] (3 each), b done at
        # 10; a has 3 left alone, done at 13.
        assert done["b"] == pytest.approx(10.0)
        assert done["a"] == pytest.approx(13.0)

    def test_multicore_no_contention_below_capacity(self):
        env = Environment()
        ps = ProcessorSharing(env, speed=1.0, cores=2)
        done = []

        def job(env):
            yield ps.compute(6.0)
            done.append(env.now)

        env.process(job(env))
        env.process(job(env))
        env.run()
        assert done == [pytest.approx(6.0)] * 2

    def test_multicore_contention_above_capacity(self):
        env = Environment()
        ps = ProcessorSharing(env, speed=1.0, cores=2)
        done = []

        def job(env):
            yield ps.compute(6.0)
            done.append(env.now)

        for _ in range(3):
            env.process(job(env))
        env.run()
        # 3 jobs on 2 cores: each gets 2/3 rate -> 9.0.
        assert done == [pytest.approx(9.0)] * 3

    def test_zero_work_completes_immediately(self):
        env = Environment()
        ps = ProcessorSharing(env, speed=1.0)
        evt = ps.compute(0.0)
        assert evt.triggered

    def test_large_work_values_terminate(self):
        # Regression: float residue on ~1e6-scale work values must not
        # spin the scheduler (nanosecond epsilon, not absolute).
        env = Environment()
        ps = ProcessorSharing(env, speed=40e6)
        done = []

        def job(env, work):
            yield ps.compute(work)
            done.append(env.now)

        env.process(job(env, 262144.0))
        env.process(job(env, 1048576.0))
        env.run()
        assert len(done) == 2

    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            ProcessorSharing(env, speed=0)
        with pytest.raises(ValueError):
            ProcessorSharing(env, speed=1, cores=0)
        ps = ProcessorSharing(env, speed=1)
        with pytest.raises(ValueError):
            ps.compute(-1)


class TestProcessorSharingProperties:
    @given(
        works=st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=8),
        speed=st.floats(min_value=0.1, max_value=1e8),
    )
    @settings(max_examples=60, deadline=None)
    def test_total_time_equals_total_work_over_speed(self, works, speed):
        """Work conservation: with all jobs started at t=0 on one core,
        the last completion is exactly sum(work)/speed."""
        env = Environment()
        ps = ProcessorSharing(env, speed=speed)
        done = []

        def job(env, w):
            yield ps.compute(w)
            done.append(env.now)

        for w in works:
            env.process(job(env, w))
        env.run()
        assert len(done) == len(works)
        assert max(done) == pytest.approx(sum(works) / speed, rel=1e-6)

    @given(
        works=st.lists(st.floats(min_value=0.5, max_value=100), min_size=2, max_size=6),
    )
    @settings(max_examples=40, deadline=None)
    def test_completion_order_matches_work_order(self, works):
        """Smaller jobs finish no later than larger ones (PS fairness)."""
        env = Environment()
        ps = ProcessorSharing(env, speed=1.0)
        finish = {}

        def job(env, idx, w):
            yield ps.compute(w)
            finish[idx] = env.now

        for i, w in enumerate(works):
            env.process(job(env, i, w))
        env.run()
        order = sorted(range(len(works)), key=lambda i: works[i])
        times = [finish[i] for i in order]
        assert times == sorted(times)

    @pytest.mark.timeout(30)
    def test_large_clock_values_do_not_livelock(self):
        """Regression: completion times ~2.4e7 where ulp(now) > 1e-9.

        With a fixed nanosecond finish epsilon, the residual work of the
        slow jobs fell below what a scheduled timeout could add to the
        float clock, so the scheduler spun forever without advancing
        time.  The epsilon must scale with ulp(env.now).
        """
        works = [
            168397.89, 308429.01, 247742.68, 369066.51,
            106753.29, 61760.57, 904710.85, 911605.64,
        ]
        speed = 0.13
        env = Environment()
        ps = ProcessorSharing(env, speed=speed)
        done = []

        def job(env, w):
            yield ps.compute(w)
            done.append(env.now)

        for w in works:
            env.process(job(env, w))
        env.run()
        assert len(done) == len(works)
        assert max(done) == pytest.approx(sum(works) / speed, rel=1e-6)
