"""Subprocess peer-cache reader for the cooperative-cache tests.

True peer fetch needs separate OS processes: the shared block cache and
the ``gb.peer_read`` endpoint are process-wide singletons, so a second
reader inside the test process would be served locally and never touch
the wire.  This helper is that second process.

Usage::

    python _peer_reader.py MODE HOST PORT STREAM READER_ID CHUNK

Modes:

``hold``
    Read the whole stream through a peer-enabled reader, print the
    result line, then park on stdin.  The process keeps its reader —
    and therefore its shared cache and ``gb.peer_read`` endpoint —
    alive until the parent writes a line or closes the pipe, so the
    parent can fetch bytes from (or kill) a live holder.

``read``
    Same read loop, but report and exit immediately; used when the
    parent only wants the digest and counters back.

One ``DONE {json}`` line goes to stdout: bytes read, sha256 of the
stream, peer-cache hits and peer demotions observed by this process.
"""

import hashlib
import json
import sys


def _demotions_total() -> float:
    from repro import obs

    fam = obs.snapshot().get("peer_demotions_total")
    if not fam:
        return 0.0
    return sum(s["value"] for s in fam["series"])


def main() -> int:
    mode = sys.argv[1]
    host, port = sys.argv[2], int(sys.argv[3])
    stream, reader_id, chunk = sys.argv[4], sys.argv[5], int(sys.argv[6])

    from repro.gridbuffer.client import GridBufferClient

    client = GridBufferClient(host, port)
    reader = client.open_reader(
        stream,
        reader_id=reader_id,
        peer_cache=True,
        read_ahead_bytes=chunk,
        read_ahead_depth=2,
    )
    digest = hashlib.sha256()
    nbytes = 0
    while True:
        data = reader.read(chunk)
        if not data:
            break
        digest.update(data)
        nbytes += len(data)
    result = {
        "bytes": nbytes,
        "sha": digest.hexdigest(),
        "peer_hits": reader.peer_hits,
        "demotions": _demotions_total(),
    }
    print("DONE " + json.dumps(result), flush=True)
    if mode == "hold":
        sys.stdin.readline()  # parent signals teardown (or died)
    reader.close()
    client.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
