"""The Grid Buffer service.

Implements Section 4's design: the service "acts as a sink for WRITE
operations and a source for READs", storing data "in a hash table
rather than a sequential buffer" so random reads and writes work.
Additional paper semantics implemented here:

* **blocking reads** — a read of data not yet written waits for the
  writer ("if a block has not been written, the reader must wait").
* **delete-on-read** — once every registered reader has consumed a
  block it is removed from the hash table, bounding memory.
* **cache file** — if configured, every written block is also recorded
  in a :class:`~repro.gridbuffer.cache.BufferCache`; re-reads and
  backwards seeks are served from it after the table copy is gone.
* **broadcast** — one writer, many readers; a block is only dropped
  when *all* readers have consumed it.
* **bounded capacity / backpressure** — writers block while the table
  holds ``capacity_bytes``; this is what propagates a slow WAN reader
  back to the upstream model in the Table 5 experiments.

The service is thread-safe; the TCP server in
:mod:`repro.gridbuffer.server` simply exposes these methods remotely.
"""

from __future__ import annotations

import asyncio
import logging
import threading
import zlib
from bisect import bisect_left, bisect_right, insort
from dataclasses import dataclass
from functools import partial
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from .. import faults, obs
from .cache import BufferCache, IntervalSet

__all__ = [
    "GridBufferError",
    "StreamClosed",
    "StreamFailed",
    "StreamStats",
    "GridBufferService",
]


logger = logging.getLogger("repro.gridbuffer")

_BYTES_WRITTEN = obs.counter(
    "buffer_bytes_written_total", "Bytes accepted by buffer streams", labelnames=("stream",)
)
_BLOCKS_STORED = obs.counter(
    "buffer_blocks_stored_total", "Blocks stored into buffer hash tables", labelnames=("stream",)
)
_BYTES_READ = obs.counter(
    "buffer_bytes_read_total", "Bytes delivered to buffer readers", labelnames=("stream",)
)
_CACHE_HITS = obs.counter(
    "buffer_cache_hits_total", "Reads served from a stream's cache file", labelnames=("stream",)
)
_CACHE_MISSES = obs.counter(
    "buffer_cache_misses_total",
    "Reads of consumed data with no cache file to fall back on",
    labelnames=("stream",),
)
_WRITER_STALLS = obs.counter(
    "buffer_writer_stalls_total",
    "Writer waits on a capacity-full buffer (backpressure events)",
    labelnames=("stream",),
)
_READER_WAITS = obs.counter(
    "buffer_reader_waits_total",
    "Reader waits for data not yet written",
    labelnames=("stream",),
)
_BLOCKS_CACHED = obs.gauge(
    "buffer_blocks_cached", "Blocks currently held in a stream's hash table", labelnames=("stream",)
)
_BYTES_CACHED = obs.gauge(
    "buffer_bytes_cached", "Bytes currently held in a stream's hash table", labelnames=("stream",)
)
_READERS = obs.gauge(
    "buffer_readers", "Readers registered on a stream (broadcast fan-out)", labelnames=("stream",)
)
_READER_LAG = obs.gauge(
    "buffer_reader_lag_bytes",
    "Bytes between the writer's high-water mark and a reader's read frontier",
    labelnames=("stream", "reader"),
)
_READER_LAG_BLOCKS = obs.gauge(
    "buffer_reader_lag_blocks",
    "Table blocks at/after a reader's contiguous consume frontier",
    labelnames=("stream", "reader"),
)
_HOLDERS = obs.gauge(
    "buffer_holders",
    "Peers registered as cooperative-cache holders of a stream",
    labelnames=("stream",),
)
_HOLDER_BYTES = obs.gauge(
    "buffer_holder_bytes",
    "Total bytes advertised by cooperative-cache holders of a stream",
    labelnames=("stream",),
)
_ASYNC_PARKED = obs.gauge(
    "buffer_async_parked",
    "Coroutine handlers currently parked on a stream future",
    labelnames=("direction",),
)
_PARK_SECONDS = obs.histogram(
    "buffer_park_seconds",
    "Time a coroutine handler spent parked waiting for data/capacity",
    labelnames=("direction",),
)


class GridBufferError(RuntimeError):
    """Protocol violation or unavailable data."""


class StreamClosed(GridBufferError):
    """Write to a stream whose writer already closed it."""


class StreamFailed(GridBufferError):
    """The stream was aborted by a writer-side fault."""


@dataclass
class StreamStats:
    """Observable counters for one stream (for tests and benchmarks)."""

    bytes_written: int = 0
    bytes_read: int = 0
    blocks_in_table: int = 0
    bytes_in_table: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    writer_stalls: int = 0
    reader_waits: int = 0


class _Stream:
    def __init__(
        self,
        name: str,
        n_readers: int,
        capacity_bytes: Optional[int],
        cache: Optional[BufferCache],
        gen: int = 1,
    ):
        self.name = name
        self.n_readers = n_readers
        self.capacity = capacity_bytes
        self.cache = cache
        #: Stream generation: bumped by the service each time this name
        #: is *freshly* created (it survives drop_stream), so client
        #: caches keyed on it can never serve a previous incarnation's
        #: bytes and stale holder advertisements are discarded.
        self.gen = gen
        #: Cooperative-cache holder map: peer "host:port" -> advertised
        #: ranges.  Populated by consume-piggybacked advertisements,
        #: trimmed by eviction reports, reset wholesale on re-creation
        #: (a fresh _Stream starts empty).
        self.holders: Dict[str, IntervalSet] = {}
        self.blocks: Dict[int, bytes] = {}
        #: Sorted block offsets + the largest block seen: lets reads
        #: locate a covering block by bisection instead of scanning the
        #: whole dict per position.
        self.block_index: List[int] = []
        self.max_block_len = 0
        self.in_table = IntervalSet()
        self.written = IntervalSet()
        self.consumed: Dict[str, IntervalSet] = {}
        #: Highest write-batch sequence applied per writer token; replayed
        #: batches (client retried after a lost reply) are deduped here.
        self.applied_seq: Dict[str, int] = {}
        self.eof_total: Optional[int] = None
        self.failed: Optional[str] = None
        self.mem_bytes = 0
        self.cond = threading.Condition()
        #: (loop, future) pairs parked by async coroutines, split by what
        #: they wait *for*: readers wait for new data/EOF/failure state,
        #: writers wait for freed capacity.  Keeping the lists separate
        #: is load-bearing — a broadcast stream has N readers succeeding
        #: per published block, and each success frees capacity (delete-
        #: on-read GC); if that woke the readers already re-parked for
        #: the *next* block it would be O(N^2) future churn per round.
        self.async_readers: List[Tuple[Any, Any]] = []
        self.async_writers: List[Tuple[Any, Any]] = []
        self.stats = StreamStats()
        # Per-stream metric children bound once; hot paths pay a lock + add.
        self.m_bytes_written = _BYTES_WRITTEN.labels(stream=name)
        self.m_blocks_stored = _BLOCKS_STORED.labels(stream=name)
        self.m_bytes_read = _BYTES_READ.labels(stream=name)
        self.m_cache_hits = _CACHE_HITS.labels(stream=name)
        self.m_cache_misses = _CACHE_MISSES.labels(stream=name)
        self.m_writer_stalls = _WRITER_STALLS.labels(stream=name)
        self.m_reader_waits = _READER_WAITS.labels(stream=name)
        self.m_blocks_cached = _BLOCKS_CACHED.labels(stream=name)
        self.m_bytes_cached = _BYTES_CACHED.labels(stream=name)
        self.m_readers = _READERS.labels(stream=name)
        self.m_holders = _HOLDERS.labels(stream=name)
        self.m_holder_bytes = _HOLDER_BYTES.labels(stream=name)

    def wake_all(self) -> None:
        """Wake every waiter — threaded and async (callers hold ``cond``).

        Used for stream-global state changes (failure, resume, drop)
        where both directions must re-check.  Thread waiters get the
        condition broadcast; async waiters (coroutines parked on a
        future) are resolved via their loop's ``call_soon_threadsafe``.
        """
        self.cond.notify_all()
        self._resolve(self.async_readers)
        self._resolve(self.async_writers)
        self.async_readers = []
        self.async_writers = []

    def wake_readers(self) -> None:
        """Data/EOF became visible: wake waiters blocked on reads.

        The condition broadcast still reaches *all* thread waiters (one
        ``Condition`` serves both directions there — pre-existing
        behaviour); only the async side is directional.
        """
        self.cond.notify_all()
        if self.async_readers:
            self._resolve(self.async_readers)
            self.async_readers = []

    def wake_writers(self) -> None:
        """Capacity freed (GC after read/consume): wake stalled writers."""
        self.cond.notify_all()
        if self.async_writers:
            self._resolve(self.async_writers)
            self.async_writers = []

    @staticmethod
    def _resolve(waiters: List[Tuple[Any, Any]]) -> None:
        """Resolve parked futures, one loop hop per event loop.

        All server-side waiters share the engine loop, so batching the
        futures into a single ``call_soon_threadsafe`` turns N wake-ups
        into one cross-thread signal.
        """
        if not waiters:
            return
        by_loop: Dict[Any, List[Any]] = {}
        for loop, fut in waiters:
            by_loop.setdefault(loop, []).append(fut)
        for loop, futs in by_loop.items():
            loop.call_soon_threadsafe(_resolve_waiters, futs)

    def sync_table_gauges(self) -> None:
        """Push table occupancy into the registry (callers hold ``cond``)."""
        self.m_blocks_cached.set(len(self.blocks))
        self.m_bytes_cached.set(self.mem_bytes)

    def sync_reader_lag(self, reader_id: str) -> None:
        """Publish writer-frontier minus reader-frontier (callers hold ``cond``)."""
        ivs = self.written.intervals()
        top = ivs[-1][1] if ivs else 0
        done = self.consumed[reader_id].intervals()
        frontier = done[-1][1] if done else 0
        _READER_LAG.labels(stream=self.name, reader=reader_id).set(max(0, top - frontier))
        # Block-granular lag published by the *service* so it stays
        # exact when shared-cache readers batch their acks client-side
        # (the aggregator coalesces ranges, so inferring blocks from
        # individual ack calls under-counts).
        behind = len(self.block_index) - bisect_left(self.block_index, frontier)
        _READER_LAG_BLOCKS.labels(stream=self.name, reader=reader_id).set(behind)

    def sync_holder_gauges(self) -> None:
        """Push holder-map occupancy into the registry (callers hold ``cond``)."""
        self.m_holders.set(len(self.holders))
        self.m_holder_bytes.set(sum(ivs.total() for ivs in self.holders.values()))


def _resolve_waiters(futs: List["asyncio.Future"]) -> None:
    for fut in futs:
        if not fut.done():
            fut.set_result(None)


def _remove_interval(ivs: IntervalSet, start: int, end: int) -> None:
    """Remove [start, end) from an interval set (rebuild)."""
    remaining = []
    for s, e in ivs.intervals():
        if e <= start or s >= end:
            remaining.append((s, e))
        else:
            if s < start:
                remaining.append((s, start))
            if e > end:
                remaining.append((end, e))
    ivs._ivs = remaining  # noqa: SLF001 - module-private helper


class _AssemblyPlan:
    """Reply-assembly recipe built under the stream lock, executed outside.

    Table parts hold :class:`memoryview` slices of the immutable block
    ``bytes`` — still valid after delete-on-read GC removes the dict
    entries — and cache parts name file ranges to load once the lock is
    released, so cache-file IO never serialises the stream's other
    readers and the writer behind the condition variable.
    """

    __slots__ = ("total", "mem_parts", "cache_parts", "cache")

    def __init__(self, total: int, cache: Optional[BufferCache]):
        self.total = total
        self.mem_parts: List[Tuple[int, memoryview]] = []
        self.cache_parts: List[Tuple[int, int, int]] = []  # dest, file_off, length
        self.cache = cache

    def execute(self) -> bytes:
        if not self.cache_parts and len(self.mem_parts) == 1:
            return bytes(self.mem_parts[0][1])  # single-slice fast path
        buf = bytearray(self.total)
        for dest, view in self.mem_parts:
            buf[dest : dest + len(view)] = view
        for dest, off, length in self.cache_parts:
            buf[dest : dest + length] = self.cache.load(off, length)  # type: ignore[union-attr]
        return bytes(buf)


#: Registry shards: stream lookup contends only with same-shard
#: create/drop, never with every other stream's hot path.
_N_SHARDS = 16

#: Holder-map size cap per stream: hints are best-effort, so beyond
#: this many advertising peers new ones are simply not tracked.
_MAX_HOLDERS = 64


class GridBufferService:
    """In-process Grid Buffer holding any number of named streams."""

    def __init__(self, default_capacity: Optional[int] = 32 * 1024 * 1024):
        self.default_capacity = default_capacity
        self._shard_locks = [threading.Lock() for _ in range(_N_SHARDS)]
        self._shard_maps: List[Dict[str, _Stream]] = [{} for _ in range(_N_SHARDS)]
        # Per-name generation counters.  Deliberately NOT per-stream
        # state: they must survive drop_stream so a re-created stream
        # gets a *new* generation — that is what invalidates client-side
        # shared caches and stale holder advertisements after a writer
        # crash.  Own lock: names on different shards share this dict.
        self._gen_lock = threading.Lock()
        self._generations: Dict[str, int] = {}
        # Rotates the starting holder for cached_at hints so a popular
        # range is spread across its holders instead of every reader
        # being pointed at whichever peer advertised first.
        self._hint_rr = 0

    def _shard(self, name: str) -> Tuple[threading.Lock, Dict[str, _Stream]]:
        i = zlib.crc32(name.encode("utf-8", "surrogatepass")) % _N_SHARDS
        return self._shard_locks[i], self._shard_maps[i]

    @property
    def _streams(self) -> Dict[str, _Stream]:
        """Merged snapshot of every shard (tests and introspection)."""
        out: Dict[str, _Stream] = {}
        for lock, streams in zip(self._shard_locks, self._shard_maps):
            with lock:
                out.update(streams)
        return out

    # -- stream lifecycle ----------------------------------------------------
    def create_stream(
        self,
        name: str,
        n_readers: int = 1,
        capacity_bytes: Optional[int] = None,
        cache: Optional[BufferCache] = None,
    ) -> None:
        """Declare a stream before use.  Idempotent for identical config."""
        if n_readers < 1:
            raise ValueError("n_readers must be >= 1")
        lock, streams = self._shard(name)
        with lock:
            existing = streams.get(name)
            if existing is not None:
                if existing.n_readers != n_readers:
                    raise GridBufferError(f"stream {name!r} already exists with different config")
                return
            cap = capacity_bytes if capacity_bytes is not None else self.default_capacity
            with self._gen_lock:
                gen = self._generations.get(name, 0) + 1
                self._generations[name] = gen
            streams[name] = _Stream(name, n_readers, cap, cache, gen=gen)
            logger.debug(
                "stream %s created (readers=%d capacity=%s cache=%s gen=%d)",
                name, n_readers, cap, cache is not None, gen,
            )

    def _stream(self, name: str) -> _Stream:
        lock, streams = self._shard(name)
        with lock:
            try:
                return streams[name]
            except KeyError:
                raise GridBufferError(f"unknown stream {name!r}") from None

    def exists(self, name: str) -> bool:
        lock, streams = self._shard(name)
        with lock:
            return name in streams

    def stream_names(self) -> List[str]:
        """Sorted names of every live stream (ops plane / introspection)."""
        names: List[str] = []
        for lock, streams in zip(self._shard_locks, self._shard_maps):
            with lock:
                names.extend(streams)
        return sorted(names)

    def register_reader(self, name: str, reader_id: str) -> int:
        """Attach a reader; at most ``n_readers`` distinct ids allowed.

        Returns the stream's generation so clients can key their shared
        block caches on it (a re-created stream must never be served
        from a previous incarnation's cached bytes).
        """
        st = self._stream(name)
        with st.cond:
            if reader_id in st.consumed:
                return st.gen
            if len(st.consumed) >= st.n_readers:
                raise GridBufferError(
                    f"stream {name!r} already has {st.n_readers} readers"
                )
            st.consumed[reader_id] = IntervalSet()
            st.m_readers.set(len(st.consumed))
            st.wake_writers()  # stall classification depends on reader count
            return st.gen

    def stream_generation(self, name: str) -> int:
        """Current generation of a live stream."""
        return self._stream(name).gen

    def stats(self, name: str) -> StreamStats:
        st = self._stream(name)
        with st.cond:
            st.stats.blocks_in_table = len(st.blocks)
            st.stats.bytes_in_table = st.mem_bytes
            return StreamStats(**vars(st.stats))

    def drop_stream(self, name: str) -> None:
        lock, streams = self._shard(name)
        with lock:
            st = streams.pop(name, None)
        if st is not None and st.cache is not None:
            st.cache.close()

    # -- writer side ----------------------------------------------------------
    def write(
        self,
        name: str,
        offset: int,
        data: bytes,
        timeout: Optional[float] = None,
        token: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> Optional[str]:
        """Store a block at ``offset``; blocks while capacity is exhausted.

        Returns the stall reason (``"buffer_full"``/``"slow_reader"``) if
        the writer had to wait, else ``None``.  ``token``/``seq`` enable
        replay dedupe exactly as in :meth:`write_multi`.
        """
        if offset < 0:
            raise ValueError("offset must be >= 0")
        injector = faults.ACTIVE
        if injector is not None:
            injector.fire("gb.service", "write", name)
        return self._write_impl(name, offset, data, timeout, token, seq)

    def _write_impl(
        self,
        name: str,
        offset: int,
        data: bytes,
        timeout: Optional[float],
        token: Optional[str],
        seq: Optional[int],
    ) -> Optional[str]:
        st = self._stream(name)
        if not data:
            return None
        with st.cond:
            if self._replayed(st, token, seq):
                return None
            stall = self._write_locked(st, offset, data, timeout)
            self._record_seq(st, token, seq)
            st.sync_table_gauges()
            st.wake_readers()
        return stall

    def write_multi(
        self,
        name: str,
        runs: Sequence[Tuple[int, bytes]],
        timeout: Optional[float] = None,
        token: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> Tuple[int, Optional[str]]:
        """Scatter several blocks under one lock acquisition.

        One vectored call replaces ``len(runs)`` round trips *and*
        ``len(runs)`` condition-variable cycles; readers are notified
        once, after all blocks landed.  Returns ``(total bytes stored,
        stall reason)`` where the stall reason is ``None`` when the
        batch landed without waiting for capacity (else
        ``"buffer_full"``/``"slow_reader"`` — see :meth:`_write_locked`).

        ``token`` identifies the writer and ``seq`` must increase per
        batch: a batch whose ``seq`` was already applied for ``token``
        is a transport-level replay (the client retried after losing the
        reply, not the request) and is skipped, making ``gb.write_multi``
        safe to retry.
        """
        for offset, _ in runs:
            if offset < 0:
                raise ValueError("offset must be >= 0")
        injector = faults.ACTIVE
        if injector is not None:
            injector.fire("gb.service", "write_multi", name)
        return self._write_multi_impl(name, runs, timeout, token, seq)

    def _write_multi_impl(
        self,
        name: str,
        runs: Sequence[Tuple[int, bytes]],
        timeout: Optional[float],
        token: Optional[str],
        seq: Optional[int],
    ) -> Tuple[int, Optional[str]]:
        st = self._stream(name)
        total = 0
        stall: Optional[str] = None
        with st.cond:
            if self._replayed(st, token, seq):
                return 0, None
            for offset, data in runs:
                if not data:
                    continue
                stall = self._write_locked(st, offset, data, timeout) or stall
                total += len(data)
            self._record_seq(st, token, seq)
            st.sync_table_gauges()
            st.wake_readers()
        return total, stall

    async def write_async(
        self,
        name: str,
        offset: int,
        data: bytes,
        timeout: Optional[float] = None,
        token: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> Optional[str]:
        """Async-native :meth:`write`: a capacity stall parks a future
        on the stream instead of blocking a thread."""
        if offset < 0:
            raise ValueError("offset must be >= 0")
        injector = faults.ACTIVE
        if injector is not None:
            # On the event loop: await, so a delay rule stalls only this
            # handler, not every connection sharing the loop.
            await injector.fire_async("gb.service", "write", name)
        st = self._stream(name)
        if not data:
            return None
        if st.cache is not None:
            # Cache-file stores are blocking disk IO: keep them off the
            # event loop by running the sync path on a worker thread.
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, partial(self._write_impl, name, offset, data, timeout, token, seq)
            )
        _total, stall = await self._write_runs_async(st, [(offset, data)], timeout, token, seq)
        return stall

    async def write_multi_async(
        self,
        name: str,
        runs: Sequence[Tuple[int, bytes]],
        timeout: Optional[float] = None,
        token: Optional[str] = None,
        seq: Optional[int] = None,
    ) -> Tuple[int, Optional[str]]:
        """Async-native :meth:`write_multi` (same replay-dedupe contract)."""
        for offset, _ in runs:
            if offset < 0:
                raise ValueError("offset must be >= 0")
        injector = faults.ACTIVE
        if injector is not None:
            await injector.fire_async("gb.service", "write_multi", name)
        st = self._stream(name)
        if st.cache is not None:
            loop = asyncio.get_running_loop()
            return await loop.run_in_executor(
                None, partial(self._write_multi_impl, name, runs, timeout, token, seq)
            )
        return await self._write_runs_async(st, runs, timeout, token, seq)

    async def _write_runs_async(
        self,
        st: _Stream,
        runs: Sequence[Tuple[int, bytes]],
        timeout: Optional[float],
        token: Optional[str],
        seq: Optional[int],
    ) -> Tuple[int, Optional[str]]:
        """Store ``runs`` with async capacity stalls (cache-less streams).

        Mirrors the sync path: blocks already stored before a stall are
        published immediately (mid-batch ``wake_readers``) so the
        readers this writer is waiting on can drain the table.
        """
        runs = [(int(offset), data) for offset, data in runs if data]
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        total = 0
        stall: Optional[str] = None
        i = 0
        first = True
        while True:
            fut = None
            with st.cond:
                if first and self._replayed(st, token, seq):
                    return 0, None
                first = False
                while i < len(runs):
                    offset, data = runs[i]
                    self._check_writable(st, len(data))
                    if st.capacity is not None and st.mem_bytes + len(data) > st.capacity:
                        stall = (
                            "slow_reader" if len(st.consumed) >= st.n_readers else "buffer_full"
                        )
                        st.stats.writer_stalls += 1
                        st.m_writer_stalls.inc()
                        break
                    self._store_block(st, offset, data)
                    total += len(data)
                    i += 1
                if i == len(runs):
                    self._record_seq(st, token, seq)
                st.sync_table_gauges()
                # Publish whatever landed (possibly a partial batch) —
                # and only then park, so the wake cannot consume the
                # future we are about to wait on.
                st.wake_readers()
                if i < len(runs):
                    fut = loop.create_future()
                    st.async_writers.append((loop, fut))
            if fut is None:
                return total, stall
            parked_at = loop.time()
            _ASYNC_PARKED.labels(direction="write").inc()
            try:
                if deadline is None:
                    await fut
                else:
                    async with asyncio.timeout_at(deadline):
                        await fut
            except TimeoutError:
                raise TimeoutError(f"write stalled on full buffer {st.name!r}") from None
            finally:
                _ASYNC_PARKED.labels(direction="write").dec()
                _PARK_SECONDS.labels(direction="write").observe(loop.time() - parked_at)

    @staticmethod
    def _replayed(st: _Stream, token: Optional[str], seq: Optional[int]) -> bool:
        """True when this (token, seq) batch already landed (holds ``cond``)."""
        if token is None or seq is None:
            return False
        return st.applied_seq.get(token, -1) >= seq

    @staticmethod
    def _record_seq(st: _Stream, token: Optional[str], seq: Optional[int]) -> None:
        if token is not None and seq is not None:
            st.applied_seq[token] = seq

    def _write_locked(
        self, st: _Stream, offset: int, data: bytes, timeout: Optional[float]
    ) -> Optional[str]:
        """One block store; caller holds ``st.cond`` and notifies after.

        Returns why the writer stalled, if it did: ``"slow_reader"``
        when every reader is registered but lagging (the buffer drains
        as slowly as its slowest consumer), ``"buffer_full"`` when
        capacity is exhausted with readers still missing (nothing can be
        GC'd yet, so batching harder cannot help).
        """
        self._check_writable(st, len(data))
        stall: Optional[str] = None
        while st.capacity is not None and st.mem_bytes + len(data) > st.capacity:
            stall = "slow_reader" if len(st.consumed) >= st.n_readers else "buffer_full"
            st.stats.writer_stalls += 1
            st.m_writer_stalls.inc()
            # A mid-batch stall must publish the blocks already stored,
            # or the readers this wait depends on could never drain.
            st.wake_readers()
            if not st.cond.wait(timeout=timeout):
                raise TimeoutError(f"write stalled on full buffer {st.name!r}")
        self._store_block(st, offset, data)
        return stall

    @staticmethod
    def _check_writable(st: _Stream, data_len: int) -> None:
        """Raise unless the stream can (eventually) accept a block."""
        if st.failed is not None:
            raise StreamFailed(f"stream {st.name!r} failed: {st.failed}")
        if st.eof_total is not None:
            raise StreamClosed(f"stream {st.name!r} writer already closed")
        if st.capacity is not None and data_len > st.capacity:
            raise GridBufferError(
                f"block of {data_len} bytes exceeds stream capacity {st.capacity}"
            )

    def _store_block(self, st: _Stream, offset: int, data: bytes) -> None:
        """Land one block in the table (capacity already available)."""
        if st.written.covers(offset, offset + len(data)) and st.cache is None:
            # Overwrite of in-flight data: replace table contents.
            self._drop_blocks_overlapping(st, offset, offset + len(data))
        old = st.blocks.get(offset)
        if old is not None:
            st.mem_bytes -= len(old)  # same-offset rewrite replaces, not adds
        else:
            insort(st.block_index, offset)
        st.blocks[offset] = bytes(data)
        st.max_block_len = max(st.max_block_len, len(data))
        st.in_table.add(offset, offset + len(data))
        st.written.add(offset, offset + len(data))
        st.mem_bytes += len(data)
        st.stats.bytes_written += len(data)
        st.m_bytes_written.inc(len(data))
        st.m_blocks_stored.inc()
        if st.cache is not None:
            st.cache.store(offset, data)

    def close_writer(self, name: str) -> int:
        """Mark EOF; returns the stream's total length.

        The stream must be contiguous from offset 0 — a gap means some
        range was never written and readers would block forever.
        """
        st = self._stream(name)
        with st.cond:
            if st.eof_total is not None:
                return st.eof_total
            gap = st.written.first_gap(0, 1 << 62)
            ivs = st.written.intervals()
            total = ivs[-1][1] if ivs else 0
            if gap is not None and gap[0] < total:
                raise GridBufferError(
                    f"stream {name!r} has unwritten gap at {gap}; cannot close"
                )
            st.eof_total = total
            st.wake_readers()
            return total

    # -- fault handling ---------------------------------------------------------
    def abort_writer(self, name: str, reason: str = "writer aborted") -> None:
        """Mark the stream failed; waiting readers raise StreamFailed.

        A stream with no EOF whose writer dies would otherwise block its
        readers forever (Section 4 motivates the cache partly as fault
        flexibility — this is the explicit failure signal).
        """
        st = self._stream(name)
        with st.cond:
            st.failed = reason
            logger.warning("stream %s aborted: %s", name, reason)
            st.wake_all()

    def resume_writer(self, name: str) -> int:
        """Clear a failure and return the offset to resume writing from.

        The resume point is the contiguous high-water mark: everything
        below it was durably delivered (table or cache).  A restarted
        writer seeks its source to this offset and continues.
        """
        st = self._stream(name)
        with st.cond:
            if st.eof_total is not None:
                raise StreamClosed(f"stream {name!r} already completed")
            st.failed = None
            st.wake_all()
            gap = st.written.first_gap(0, 1 << 62)
            ivs = st.written.intervals()
            top = ivs[-1][1] if ivs else 0
            return gap[0] if gap is not None and gap[0] < top else top

    def high_water(self, name: str) -> int:
        """Contiguous bytes written from offset 0 (resume/monitor aid)."""
        st = self._stream(name)
        with st.cond:
            gap = st.written.first_gap(0, 1 << 62)
            ivs = st.written.intervals()
            top = ivs[-1][1] if ivs else 0
            return gap[0] if gap is not None and gap[0] < top else top

    # -- reader side ----------------------------------------------------------
    def read(
        self,
        name: str,
        reader_id: str,
        offset: int,
        length: int,
        timeout: Optional[float] = None,
        min_bytes: int = 1,
    ) -> bytes:
        """Read up to ``length`` bytes at ``offset`` for ``reader_id``.

        POSIX semantics: blocks only while *nothing* is available at
        ``offset``; otherwise returns the available prefix (possibly
        fewer than ``length`` bytes).  Returns ``b""`` exactly when
        ``offset`` is at/after EOF.  Blocking for the full range would
        deadlock against a capacity-stalled writer.

        ``min_bytes > 1`` (the windowed-read op) keeps blocking until
        at least that much is contiguously available — unless EOF or
        the ``length`` budget bounds the wait first — so a fast reader
        polling a slow writer costs one reply per window, not one per
        trickled block.

        Cache-file IO and reply assembly happen *outside* the stream
        lock: under the lock the service only plans the reply (slices
        of immutable table blocks + cache ranges), marks consumption
        and runs GC.
        """
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be >= 0")
        injector = faults.ACTIVE
        if injector is not None:
            injector.fire("gb.service", "read", name)
        min_bytes = max(1, min(min_bytes, length)) if length else 0
        st = self._stream(name)
        with st.cond:
            while True:
                res = self._read_attempt(st, reader_id, offset, length, min_bytes)
                if res is not None:
                    break
                st.stats.reader_waits += 1
                st.m_reader_waits.inc()
                if not st.cond.wait(timeout=timeout):
                    raise TimeoutError(
                        f"read of [{offset},{offset + length}) timed out on stream {name!r}"
                    )
        if isinstance(res, bytes):
            return res
        return res.execute()

    async def read_async(
        self,
        name: str,
        reader_id: str,
        offset: int,
        length: int,
        timeout: Optional[float] = None,
        min_bytes: int = 1,
    ) -> bytes:
        """Async-native :meth:`read`: a wait for unwritten data parks a
        future on the stream instead of a server thread, which is what
        lets one node hold thousands of concurrently blocked readers.
        Cache-file IO still runs on a worker thread."""
        if offset < 0 or length < 0:
            raise ValueError("offset/length must be >= 0")
        injector = faults.ACTIVE
        if injector is not None:
            await injector.fire_async("gb.service", "read", name)
        min_bytes = max(1, min(min_bytes, length)) if length else 0
        st = self._stream(name)
        loop = asyncio.get_running_loop()
        deadline = None if timeout is None else loop.time() + timeout
        while True:
            fut = None
            with st.cond:
                res = self._read_attempt(st, reader_id, offset, length, min_bytes)
                if res is None:
                    st.stats.reader_waits += 1
                    st.m_reader_waits.inc()
                    fut = loop.create_future()
                    st.async_readers.append((loop, fut))
            if res is not None:
                break
            parked_at = loop.time()
            _ASYNC_PARKED.labels(direction="read").inc()
            try:
                if deadline is None:
                    await fut
                else:
                    async with asyncio.timeout_at(deadline):
                        await fut
            except TimeoutError:
                raise TimeoutError(
                    f"read of [{offset},{offset + length}) timed out on stream {name!r}"
                ) from None
            finally:
                _ASYNC_PARKED.labels(direction="read").dec()
                _PARK_SECONDS.labels(direction="read").observe(loop.time() - parked_at)
        if isinstance(res, bytes):
            return res
        if res.cache_parts:
            return await loop.run_in_executor(None, res.execute)
        return res.execute()

    def _read_attempt(
        self, st: _Stream, reader_id: str, offset: int, length: int, min_bytes: int
    ):
        """One readiness check under ``st.cond``.

        Returns an :class:`_AssemblyPlan` when data is servable now,
        ``b""`` at/after EOF, or ``None`` when the caller must wait.
        Raises for unregistered readers, failed streams and
        unrecoverable (consumed, uncached) ranges.
        """
        if reader_id not in st.consumed:
            raise GridBufferError(
                f"reader {reader_id!r} not registered on stream {st.name!r}"
            )
        if st.failed is not None:
            raise StreamFailed(f"stream {st.name!r} failed: {st.failed}")
        end = offset + length
        if st.eof_total is not None:
            if offset >= st.eof_total:
                return b""
            end = min(end, st.eof_total)
        avail_end = self._available_upto(st, offset, end)
        if avail_end > offset and (avail_end - offset >= min_bytes or avail_end >= end):
            plan = self._plan_assembly(st, reader_id, offset, avail_end)
            st.stats.bytes_read += plan.total
            st.m_bytes_read.inc(plan.total)
            st.sync_reader_lag(reader_id)
            st.wake_writers()  # delete-on-read GC may have freed capacity
            return plan
        self._check_recoverable(st, offset, end)
        return None

    def total_bytes(self, name: str) -> Optional[int]:
        """Stream length once the writer closed it, else ``None``."""
        st = self._stream(name)
        with st.cond:
            return st.eof_total

    def mark_consumed(
        self, name: str, reader_id: str, ranges: Iterable[Tuple[int, int]]
    ) -> None:
        """Record ranges as consumed for ``reader_id`` without reading.

        The vectored-broadcast path: when a co-located reader already
        fetched a range and served it from a shared client-side cache,
        the other readers acknowledge here so delete-on-read GC and the
        per-reader lag gauges stay exact without moving the bytes
        again.  Ranges outside written data are ignored.
        """
        self.mark_consumed_multi(name, [(reader_id, ranges)])

    def mark_consumed_multi(
        self,
        name: str,
        entries: Sequence[Tuple[str, Iterable[Tuple[int, int]]]],
    ) -> None:
        """Batched :meth:`mark_consumed` covering several readers at once.

        Backs the ``gb.consume_multi`` wire op: co-located readers
        sharing a client-side cache acknowledge their consumed ranges
        in one frame, one lock acquisition and one GC pass, instead of
        one ``gb.consume`` round trip per reader.  All readers are
        validated before anything is applied.
        """
        st = self._stream(name)
        with st.cond:
            for reader_id, _ranges in entries:
                if reader_id not in st.consumed:
                    raise GridBufferError(
                        f"reader {reader_id!r} not registered on stream {name!r}"
                    )
            touched: List[int] = []
            for reader_id, ranges in entries:
                for start, end in ranges:
                    start, end = max(0, int(start)), int(end)
                    if end <= start:
                        continue
                    st.consumed[reader_id].add(start, end)
                    st.stats.bytes_read += end - start
                    st.m_bytes_read.inc(end - start)
                    touched.extend(self._blocks_overlapping(st, start, end))
                st.sync_reader_lag(reader_id)
            self._gc_blocks(st, touched)
            st.sync_table_gauges()
            st.wake_writers()

    # -- cooperative cache holder map ----------------------------------------
    def note_holder(
        self,
        name: str,
        peer: str,
        holds: Optional[Iterable[Sequence[int]]] = None,
        drops: Optional[Iterable[Sequence[int]]] = None,
        gen: Optional[int] = None,
    ) -> None:
        """Apply a piggybacked holder advertisement from ``peer``.

        ``holds`` are ranges the peer's shared cache newly holds,
        ``drops`` ranges it evicted.  An advertisement carrying a stale
        generation (from a previous incarnation of the stream) is
        discarded, as is one racing the stream's drop — holder state is
        a hint, losing it only costs origin reads, never correctness.
        """
        try:
            st = self._stream(name)
        except GridBufferError:
            return
        with st.cond:
            if gen is not None and int(gen) != st.gen:
                return
            ivs = st.holders.get(peer)
            if ivs is None:
                if len(st.holders) >= _MAX_HOLDERS:
                    return  # hint map full: forget late joiners, not correctness
                ivs = st.holders[peer] = IntervalSet()
            for start, end in holds or ():
                start, end = max(0, int(start)), int(end)
                if end > start:
                    ivs.add(start, end)
            for start, end in drops or ():
                start, end = max(0, int(start)), int(end)
                if end > start:
                    _remove_interval(ivs, start, end)
            if not ivs:
                st.holders.pop(peer, None)
            st.sync_holder_gauges()

    def drop_holder(self, name: str, peer: str) -> None:
        """Forget every range advertised by ``peer`` (reader shutdown)."""
        try:
            st = self._stream(name)
        except GridBufferError:
            return
        with st.cond:
            st.holders.pop(peer, None)
            st.sync_holder_gauges()

    def holders_for(
        self,
        name: str,
        start: int,
        end: int,
        k: int = 3,
        exclude: Optional[str] = None,
    ) -> List[str]:
        """Up to ``k`` peers advertising bytes in [start, end).

        Backs the ``cached_at`` hint in read and consume-ack replies.
        Peers covering ``start`` — the byte the reader needs *next* —
        rank first; overlap-only holders (a laggard still needs what a
        mid-stream peer holds) fill the remaining slots.  Without the
        covering-first split, a wide hint window points every reader at
        peers that hold some earlier range but miss on the frontier.
        """
        if end <= start or k <= 0:
            return []
        try:
            st = self._stream(name)
        except GridBufferError:
            return []
        covering: List[str] = []
        touching: List[str] = []
        with st.cond:
            candidates = [p for p in st.holders if p != exclude]
            if candidates:
                # Holder dicts are insertion-ordered, so without
                # rotation every hint would lead with the first
                # advertiser and k-truncation would hide the rest.
                self._hint_rr += 1
                rot = self._hint_rr % len(candidates)
                candidates = candidates[rot:] + candidates[:rot]
            for peer in candidates:
                for s, e in st.holders[peer].intervals():
                    if s <= start < e:
                        covering.append(peer)
                        break
                    if s < end and e > start:
                        touching.append(peer)
                        break
                if len(covering) >= k:
                    break
        return (covering + touching)[:k]

    # -- internals -----------------------------------------------------------
    def _check_recoverable(self, st: _Stream, start: int, end: int) -> None:
        """Raise if some wanted byte was written, consumed and uncached.

        Without this a re-read on a cache-less stream would block
        forever waiting for data that will never reappear.
        """
        pos = start
        while pos < end:
            if st.in_table.covers(pos, pos + 1):
                gap = st.in_table.first_gap(pos, end)
                pos = end if gap is None else gap[0]
                continue
            if st.cache is not None and st.cache.has(pos, 1):
                pos = min(st.cache.valid_upto(pos), end)
                continue
            if st.written.covers(pos, pos + 1):
                raise GridBufferError(
                    f"range [{pos},{end}) of stream {st.name!r} was consumed and no "
                    "cache file is configured (sequential-only stream)"
                )
            return  # genuinely unwritten: caller should wait

    def _available_upto(self, st: _Stream, start: int, end: int) -> int:
        """Furthest position in [start, end) servable contiguously now."""
        pos = start
        while pos < end:
            if st.in_table.covers(pos, pos + 1):
                gap = st.in_table.first_gap(pos, end)
                pos = end if gap is None else gap[0]
            elif st.cache is not None and st.cache.has(pos, 1):
                pos = min(st.cache.valid_upto(pos), end)
            else:
                break
        return pos

    def _plan_assembly(
        self, st: _Stream, reader_id: str, start: int, end: int
    ) -> _AssemblyPlan:
        """Plan the reply for [start, end) and account it (holds ``cond``).

        Collects memoryview slices over the table's immutable block
        bytes plus cache-range descriptors; the caller executes the
        plan (the actual copying and cache-file IO) after releasing
        the stream lock.
        """
        plan = _AssemblyPlan(end - start, st.cache)
        pos = start
        touched: list[int] = []
        while pos < end:
            block_off = self._covering_block(st, pos)
            if block_off is not None:
                data = st.blocks[block_off]
                take_from = pos - block_off
                take = min(len(data) - take_from, end - pos)
                plan.mem_parts.append(
                    (pos - start, memoryview(data)[take_from : take_from + take])
                )
                touched.append(block_off)
                pos += take
                continue
            if st.cache is not None and st.cache.has(pos, 1):
                upto = min(st.cache.valid_upto(pos), end)
                plan.cache_parts.append((pos - start, pos, upto - pos))
                st.stats.cache_hits += 1
                st.m_cache_hits.inc()
                pos = upto
                continue
            st.stats.cache_misses += 1
            st.m_cache_misses.inc()
            raise GridBufferError(
                f"range [{pos},{end}) of stream {st.name!r} was consumed and no "
                "cache file is configured (sequential-only stream)"
            )
        st.consumed[reader_id].add(start, end)
        self._gc_blocks(st, touched)
        st.sync_table_gauges()
        return plan

    def _covering_block(self, st: _Stream, pos: int) -> Optional[int]:
        """Offset of a table block covering ``pos`` (bisect, not scan)."""
        if not st.in_table.covers(pos, pos + 1):
            return None
        idx = st.block_index
        i = bisect_right(idx, pos) - 1
        # Walk left over candidate offsets; no block further left than
        # max_block_len can reach pos, which bounds the walk to the
        # (rare, cache-stream-only) overlapping-block case.
        floor = pos - st.max_block_len
        while i >= 0:
            off = idx[i]
            if off < floor:
                break
            data = st.blocks.get(off)
            if data is not None and off <= pos < off + len(data):
                return off
            i -= 1
        return None

    def _blocks_overlapping(self, st: _Stream, start: int, end: int) -> List[int]:
        """Offsets of table blocks intersecting [start, end)."""
        idx = st.block_index
        lo = bisect_right(idx, max(0, start - st.max_block_len))
        lo = max(0, lo - 1)
        out = []
        for i in range(lo, len(idx)):
            off = idx[i]
            if off >= end:
                break
            data = st.blocks.get(off)
            if data is not None and off + len(data) > start:
                out.append(off)
        return out

    def _unindex_block(self, st: _Stream, off: int) -> None:
        i = bisect_left(st.block_index, off)
        if i < len(st.block_index) and st.block_index[i] == off:
            del st.block_index[i]

    def _gc_blocks(self, st: _Stream, offsets: list[int]) -> None:
        """Drop table blocks fully consumed by every registered reader.

        Until all ``n_readers`` readers have registered, nothing is
        dropped (a late-joining reader must still see the data).
        """
        if len(st.consumed) < st.n_readers:
            return
        for off in set(offsets):
            data = st.blocks.get(off)
            if data is None:
                continue
            end = off + len(data)
            if all(c.covers(off, end) for c in st.consumed.values()):
                del st.blocks[off]
                self._unindex_block(st, off)
                st.mem_bytes -= len(data)
                _remove_interval(st.in_table, off, end)

    def _drop_blocks_overlapping(self, st: _Stream, start: int, end: int) -> None:
        for off in self._blocks_overlapping(st, start, end):
            data = st.blocks.pop(off)
            self._unindex_block(st, off)
            st.mem_bytes -= len(data)
            _remove_interval(st.in_table, off, off + len(data))
