"""Cluster-wide cooperative block cache: holders, hints, peer fetch.

Covers the PR 8 protocol end to end:

- the shared block cache is keyed by stream *generation* (a re-created
  stream never serves stale bytes),
- the origin-side holder map lifecycle (advertise -> evict -> no stale
  hint; stale-generation advertisements discarded; holder gauges),
- the ``reader_lag_blocks`` gauge,
- codec skew in both directions — a request without the negotiated
  hint keys gets no ``cached_at``, and a client pointed at a server
  that never hints still reads correctly,
- the ``gb.peer_read`` endpoint itself (crc-verified hit, peer-miss),
- real cross-process peer fetch: a subprocess holder serves an inline
  follower byte-identically; killing the holder mid-read demotes it
  and falls back to the origin; injected ``gb.peer_read`` faults do
  the same under the chaos harness.

True peer traffic needs two OS processes (the shared cache and peer
endpoint are process singletons), hence the ``_peer_reader.py``
helper subprocess.
"""

import hashlib
import json
import os
import subprocess
import sys
import zlib
from pathlib import Path

import pytest

from repro import faults, obs
from repro.faults import FaultRule
from repro.gridbuffer.client import (
    _SHARED_CACHES,
    _SHARED_CACHES_LOCK,
    GridBufferClient,
    _PeerCacheServer,
    _shared_cache_acquire,
    _shared_cache_release,
    _SharedStreamCache,
)
from repro.gridbuffer.protocol import OP_PEER_READ, OP_READ
from repro.transport.tcp import RpcClient, RpcError

REPO = Path(__file__).resolve().parents[1]
HELPER = Path(__file__).resolve().parent / "_peer_reader.py"

pytestmark = pytest.mark.peer


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    faults.disarm()


@pytest.fixture()
def client(buffer_server):
    c = GridBufferClient(*buffer_server.address)
    yield c
    c.close()


def _payload(n: int, seed: int = 8) -> bytes:
    return bytes((i * 31 + seed) % 251 for i in range(n))


def _sha(data: bytes) -> str:
    return hashlib.sha256(data).hexdigest()


def _demotions_total() -> float:
    fam = obs.snapshot().get("peer_demotions_total")
    if not fam:
        return 0.0
    return sum(s["value"] for s in fam["series"])


def _read_all(reader, chunk: int = 64 * 1024) -> bytes:
    out = []
    while True:
        data = reader.read(chunk)
        if not data:
            break
        out.append(data)
    return b"".join(out)


def _spawn(mode: str, addr, stream: str, reader_id: str, chunk: int):
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    return subprocess.Popen(
        [
            sys.executable,
            str(HELPER),
            mode,
            addr[0],
            str(addr[1]),
            stream,
            reader_id,
            str(chunk),
        ],
        stdin=subprocess.PIPE,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _result(child) -> dict:
    line = child.stdout.readline().strip()
    if not line.startswith("DONE "):
        child.kill()
        raise AssertionError(f"helper failed: {line!r}\n{child.stderr.read()}")
    return json.loads(line[5:])


class TestGenerationKeyedCache:
    """Satellite (a): the shared cache key includes the generation."""

    ADDR = ("127.0.0.1", 1)  # never dialled: registry-only tests

    def test_generations_get_distinct_caches(self):
        a = _shared_cache_acquire(self.ADDR, "gen-key", 0)
        b = _shared_cache_acquire(self.ADDR, "gen-key", 1)
        try:
            assert a is not b
            assert (a.gen, b.gen) == (0, 1)
            assert _shared_cache_acquire(self.ADDR, "gen-key", 1) is b
        finally:
            _shared_cache_release(self.ADDR, "gen-key", 0)
            _shared_cache_release(self.ADDR, "gen-key", 1)
            assert _shared_cache_release(self.ADDR, "gen-key", 1) is True

    def test_recreated_stream_never_serves_stale_bytes(self):
        """Bytes cached under generation N are invisible to N+1."""
        old = _shared_cache_acquire(self.ADDR, "gen-stale", 0)
        try:
            old.put(0, b"stale" * 100, advertise=False)
            fresh = _shared_cache_acquire(self.ADDR, "gen-stale", 1)
            try:
                assert fresh.peek_range(0, 500) is None
            finally:
                _shared_cache_release(self.ADDR, "gen-stale", 1)
        finally:
            _shared_cache_release(self.ADDR, "gen-stale", 0)


class TestHolderLifecycle:
    """Origin-side holder map: advertise, evict, discard stale gens."""

    def _stream(self, service, name):
        service.create_stream(name, n_readers=1)
        service.register_reader(name, "r")
        service.write(name, 0, b"h" * 8192)
        return service.stream_generation(name)

    def test_advertise_then_evict_leaves_no_stale_hint(self, buffer_server):
        service = buffer_server.service
        gen = self._stream(service, "hl")
        service.note_holder("hl", "10.0.0.1:1", holds=[(0, 4096)], gen=gen)
        assert service.holders_for("hl", 0, 8192) == ["10.0.0.1:1"]
        assert obs.value("buffer_holders", {"stream": "hl"}) == 1
        assert obs.value("buffer_holder_bytes", {"stream": "hl"}) == 4096
        service.note_holder("hl", "10.0.0.1:1", drops=[(0, 4096)], gen=gen)
        assert service.holders_for("hl", 0, 8192) == []
        assert obs.value("buffer_holders", {"stream": "hl"}) == 0

    def test_stale_generation_advertisement_discarded(self, buffer_server):
        service = buffer_server.service
        gen = self._stream(service, "hl-gen")
        service.note_holder("hl-gen", "10.0.0.2:1", holds=[(0, 4096)], gen=gen + 1)
        assert service.holders_for("hl-gen", 0, 8192) == []

    def test_drop_holder_forgets_every_range(self, buffer_server):
        service = buffer_server.service
        gen = self._stream(service, "hl-drop")
        service.note_holder(
            "hl-drop", "10.0.0.3:1", holds=[(0, 2048), (4096, 8192)], gen=gen
        )
        service.drop_holder("hl-drop", "10.0.0.3:1")
        assert service.holders_for("hl-drop", 0, 8192) == []
        assert obs.value("buffer_holders", {"stream": "hl-drop"}) == 0

    def test_covering_holder_ranks_before_overlap_only(self, buffer_server):
        """The peer holding the *next needed byte* must come first."""
        service = buffer_server.service
        gen = self._stream(service, "hl-rank")
        service.note_holder("hl-rank", "lag:1", holds=[(4096, 8192)], gen=gen)
        service.note_holder("hl-rank", "cov:1", holds=[(0, 8192)], gen=gen)
        for _ in range(4):  # rotation must never outrank coverage
            assert service.holders_for("hl-rank", 0, 8192)[0] == "cov:1"

    def test_requester_excluded_from_its_own_hints(self, buffer_server):
        service = buffer_server.service
        gen = self._stream(service, "hl-self")
        service.note_holder("hl-self", "me:1", holds=[(0, 8192)], gen=gen)
        assert service.holders_for("hl-self", 0, 8192, exclude="me:1") == []


class TestReaderLagBlocks:
    """Satellite (b): block-granular lag gauge per reader."""

    def test_gauge_tracks_consume_frontier(self, client):
        client.create_stream("lag", n_readers=1)
        client.register_reader("lag", "r")
        for i in range(3):
            client.write("lag", i * 4096, b"l" * 4096)
        labels = {"stream": "lag", "reader": "r"}
        assert client.consume_multi("lag", [("r", [(0, 4096)])]) is True
        assert obs.value("buffer_reader_lag_blocks", labels) == 2
        assert client.consume_multi("lag", [("r", [(4096, 12288)])]) is True
        assert obs.value("buffer_reader_lag_blocks", labels) == 0


class TestPeerReadEndpoint:
    """The in-process ``gb.peer_read`` server over the shared caches."""

    def _plant(self, key, data):
        cache = _SharedStreamCache(gen=key[3])
        cache.put(0, data, advertise=False)
        with _SHARED_CACHES_LOCK:
            _SHARED_CACHES[key] = cache

    def _unplant(self, key):
        with _SHARED_CACHES_LOCK:
            _SHARED_CACHES.pop(key, None)

    def test_hit_serves_crc_checked_bytes(self):
        key = ("127.0.0.1", 54321, "unit", 3)
        payload = _payload(4096)
        self._plant(key, payload)
        try:
            host, _, port = _PeerCacheServer.get().addr.rpartition(":")
            rpc = RpcClient(host, int(port))
            try:
                reply, data = rpc.call(
                    OP_PEER_READ,
                    {
                        "origin": "127.0.0.1:54321",
                        "name": "unit",
                        "gen": 3,
                        "offset": 0,
                        "length": len(payload),
                    },
                )
            finally:
                rpc.close()
            assert data == payload
            assert int(reply["crc"]) == (zlib.crc32(payload) & 0xFFFFFFFF)
        finally:
            self._unplant(key)

    def test_uncached_range_is_a_peer_miss(self):
        key = ("127.0.0.1", 54322, "unit-miss", 0)
        self._plant(key, _payload(1024))
        try:
            host, _, port = _PeerCacheServer.get().addr.rpartition(":")
            rpc = RpcClient(host, int(port))
            try:
                with pytest.raises(RpcError) as exc:
                    rpc.call(
                        OP_PEER_READ,
                        {
                            "origin": "127.0.0.1:54322",
                            "name": "unit-miss",
                            "gen": 0,
                            "offset": 1 << 20,  # cached run is [0, 1024)
                            "length": 4096,
                        },
                    )
            finally:
                rpc.close()
            assert exc.value.kind == "peer-miss"
        finally:
            self._unplant(key)

    def test_wrong_generation_is_a_peer_miss(self):
        """Satellite (a) on the serving side: gen is part of the key."""
        key = ("127.0.0.1", 54323, "unit-gen", 1)
        self._plant(key, _payload(1024))
        try:
            host, _, port = _PeerCacheServer.get().addr.rpartition(":")
            rpc = RpcClient(host, int(port))
            try:
                with pytest.raises(RpcError) as exc:
                    rpc.call(
                        OP_PEER_READ,
                        {
                            "origin": "127.0.0.1:54323",
                            "name": "unit-gen",
                            "gen": 2,  # holder caches generation 1
                            "offset": 0,
                            "length": 1024,
                        },
                    )
            finally:
                rpc.close()
            assert exc.value.kind == "peer-miss"
        finally:
            self._unplant(key)


class TestCodecSkew:
    """``cached_at`` must be silent-by-absence in both skew directions."""

    def _seed_stream(self, client, buffer_server, name, n_readers=1):
        service = buffer_server.service
        client.create_stream(name, n_readers=n_readers)
        client.register_reader(name, "r")
        client.write(name, 0, b"s" * 8192)
        gen = service.stream_generation(name)
        service.note_holder(name, "10.9.9.9:1", holds=[(0, 8192)], gen=gen)

    def test_old_client_request_gets_no_hint(self, client, buffer_server):
        """A request without the negotiated hint keys -> no cached_at.

        An old client's binary field table has no ``peer_hints`` key, so
        the server sees the field as absent and must not emit a reply
        field the client cannot decode.
        """
        self._seed_stream(client, buffer_server, "skew-old")
        rpc = RpcClient(*buffer_server.address)
        try:
            reply, data = rpc.call(
                OP_READ,
                {"name": "skew-old", "reader_id": "r", "offset": 0, "length": 4096},
            )
            assert len(data) == 4096
            assert "cached_at" not in reply
            # The same request *with* the hint keys does get one — the
            # gating is on the request fields, not on the stream state.
            reply, _ = rpc.call(
                OP_READ,
                {
                    "name": "skew-old",
                    "reader_id": "r",
                    "offset": 0,
                    "length": 4096,
                    "peer": "127.0.0.1:2",
                    "peer_hints": 3,
                },
            )
            assert reply["cached_at"]["peers"] == ["10.9.9.9:1"]
        finally:
            rpc.close()

    def test_new_client_against_server_that_never_hints(
        self, client, buffer_server, monkeypatch
    ):
        """An old server returns no ``cached_at``; reads must not care."""
        monkeypatch.setattr(buffer_server, "_peer_hints", lambda *a, **k: {})
        payload = _payload(256 * 1024)
        w = client.open_writer("skew-new", n_readers=1, cache=True)
        w.write(payload)
        w.close()
        r = client.open_reader("skew-new", reader_id="r", peer_cache=True)
        try:
            assert _read_all(r) == payload
            assert r.peer_hits == 0  # no hints ever arrived, origin served all
        finally:
            r.close()

    def test_json_pinned_wire_still_carries_hints(self, buffer_server, monkeypatch):
        """Hint fields ride any codec — JSON fallback is not a downgrade."""
        monkeypatch.setenv("REPRO_WIRE", "json")
        c = GridBufferClient(*buffer_server.address)
        try:
            self._seed_stream(c, buffer_server, "skew-json", n_readers=2)
            _, hint = c.register_reader_ex(
                "skew-json", "r2", peer_hints=("127.0.0.1:3", 3)
            )
            assert hint is not None
            assert hint["peers"] == ["10.9.9.9:1"]
        finally:
            c.close()


class TestPeerFetchEndToEnd:
    """Cross-process: a holder subprocess serves an inline follower."""

    @pytest.mark.timeout(90)
    def test_follower_served_by_peer_byte_identical(self, client, buffer_server):
        payload = _payload(1024 * 1024)
        w = client.open_writer("e2e", n_readers=2, cache=True)
        w.write(payload)
        w.close()
        leader = _spawn("hold", buffer_server.address, "e2e", "leader", 64 * 1024)
        try:
            res = _result(leader)
            assert (res["bytes"], res["sha"]) == (len(payload), _sha(payload))
            hits0 = obs.value("peer_cache_hits_total", {"stream": "e2e"}) or 0
            bytes0 = obs.value("peer_fetch_bytes_total", {"stream": "e2e"}) or 0
            follower = client.open_reader(
                "e2e",
                reader_id="follower",
                peer_cache=True,
                read_ahead_bytes=64 * 1024,
                read_ahead_depth=2,
            )
            try:
                assert _read_all(follower) == payload
                assert follower.peer_hits > 0
            finally:
                follower.close()
            assert obs.value("peer_cache_hits_total", {"stream": "e2e"}) > hits0
            assert obs.value("peer_fetch_bytes_total", {"stream": "e2e"}) > bytes0
        finally:
            if leader.poll() is None:
                leader.stdin.write("\n")
                leader.stdin.flush()
            leader.wait(timeout=30)

    @pytest.mark.timeout(90)
    def test_holder_death_mid_read_demotes_and_falls_back(
        self, client, buffer_server
    ):
        """Kill the holder mid-broadcast; bytes still arrive, identical."""
        payload = _payload(2 * 1024 * 1024, seed=13)
        w = client.open_writer("death", n_readers=2, cache=True)
        w.write(payload)
        w.close()
        leader = _spawn("hold", buffer_server.address, "death", "leader", 64 * 1024)
        try:
            res = _result(leader)
            assert res["sha"] == _sha(payload)
            demoted0 = _demotions_total()
            follower = client.open_reader(
                "death",
                reader_id="follower",
                peer_cache=True,
                read_ahead_bytes=64 * 1024,
                read_ahead_depth=2,
            )
            try:
                head = follower.read(64 * 1024)
                assert head == payload[: len(head)]
                assert follower.peer_hits > 0  # the holder was really serving
                leader.kill()
                leader.wait(timeout=30)
                rest = _read_all(follower)
                assert head + rest == payload
            finally:
                follower.close()
            # Read-ahead can only have prefetched a small window before
            # the kill, so the tail *must* have demoted the dead peer
            # and re-requested from the origin.
            assert _demotions_total() > demoted0
        finally:
            if leader.poll() is None:
                leader.kill()
                leader.wait(timeout=30)


@pytest.mark.faults
class TestPeerFaultInjection:
    """Chaos rules targeting ``gb.peer_read``: peers never gate bytes."""

    @pytest.mark.timeout(90)
    @pytest.mark.parametrize("action", ["error", "close"])
    def test_injected_peer_failure_falls_back_byte_identical(
        self, client, buffer_server, action
    ):
        """Inline holder, subprocess follower, faulted peer endpoint.

        The fault rule arms in *this* process, where the holder's
        ``gb.peer_read`` endpoint lives; the follower subprocess sees
        every peer fetch fail, demotes the holder, and must still
        deliver the stream byte-identically from the origin.
        """
        name = f"chaos-{action}"
        payload = _payload(512 * 1024, seed=7)
        w = client.open_writer(name, n_readers=2, cache=True)
        w.write(payload)
        w.close()
        holder = client.open_reader(
            name,
            reader_id="holder",
            peer_cache=True,
            read_ahead_bytes=64 * 1024,
            read_ahead_depth=2,
        )
        try:
            assert _read_all(holder) == payload  # populate + advertise
            # times=0 fires forever: with read-ahead depth 2 a second
            # in-flight fetch could otherwise slip through before the
            # first failure demotes the holder.
            rule = FaultRule(
                layer="rpc.server", op=OP_PEER_READ, action=action, times=0
            )
            with faults.injected(rule, seed=20260808):
                follower = _spawn(
                    "read", buffer_server.address, name, "follower", 64 * 1024
                )
                res = _result(follower)
                follower.wait(timeout=30)
            assert res["sha"] == _sha(payload)
            assert res["bytes"] == len(payload)
            assert res["peer_hits"] == 0  # every peer fetch was faulted
            assert res["demotions"] >= 1  # ...and the holder was demoted
        finally:
            holder.close()
