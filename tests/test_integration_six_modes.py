"""One workflow exercising ALL SIX IO modes (paper Section 2's list),
plus dynamic re-mapping — the full-system integration test."""

import threading

import pytest

from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.core.replica import ReplicaSelector
from repro.gns.client import LocalGnsClient
from repro.gns.records import BufferEndpoint, GnsRecord, IOMode
from repro.gns.server import NameService
from repro.grid.nws import Measurement, NetworkWeatherService
from repro.grid.replica_catalog import Replica, ReplicaCatalog
from repro.gridbuffer.server import GridBufferServer
from repro.transport.gridftp import GridFtpServer
from repro.transport.inmem import HostRegistry


@pytest.fixture()
def world(tmp_path, request, monkeypatch):
    """Three virtual hosts, all servers, replicas, NWS data.

    Indirect param selects a Grid Buffer wire-compat skew: ``new-new``
    (default), ``old-server`` (vectored ops stripped server-side, new
    clients must fall back per block) or ``old-client`` (clients never
    send vectored ops against the new server).
    """
    skew = getattr(request, "param", "new-new")
    hosts = HostRegistry(tmp_path / "hosts")
    for name in ("compute", "store1", "store2"):
        hosts.add_host(name)

    # Seed data: a remote input on store1, a replicated dataset on both
    # store hosts.
    hosts.host("store1").resolve("/in/source.dat").parent.mkdir(parents=True, exist_ok=True)
    hosts.host("store1").resolve("/in/source.dat").write_bytes(b"S" * 4096)
    for host, tag in (("store1", b"1"), ("store2", b"2")):
        p = hosts.host(host).resolve("/replicas/big.dat")
        p.parent.mkdir(parents=True, exist_ok=True)
        p.write_bytes(tag * 2048)

    servers = {
        name: GridFtpServer(hosts.host(name).root).start()
        for name in ("compute", "store1", "store2")
    }
    buffer_server = GridBufferServer(cache_dir=tmp_path / "cache").start()
    if skew == "old-server":
        from repro.gridbuffer.protocol import OP_CONSUME, OP_READ_MULTI, OP_WRITE_MULTI

        for op in (OP_WRITE_MULTI, OP_READ_MULTI, OP_CONSUME):
            del buffer_server._rpc._handlers[op]
    elif skew == "old-client":
        from repro.gridbuffer.client import GridBufferClient

        orig_init = GridBufferClient.__init__

        def legacy_init(self, *args, **kwargs):
            orig_init(self, *args, **kwargs)
            self._vectored = False  # never sends the vectored ops

        monkeypatch.setattr(GridBufferClient, "__init__", legacy_init)

    catalog = ReplicaCatalog()
    catalog.register("lfn://big", Replica("store1", "/replicas/big.dat", size=2048))
    catalog.register("lfn://big", Replica("store2", "/replicas/big.dat", size=2048))
    nws = NetworkWeatherService()
    for i in range(4):
        nws.record("store1", "compute", Measurement(time=i, bandwidth=8e6, latency=0.01))
        nws.record("store2", "compute", Measurement(time=i, bandwidth=1e6, latency=0.2))

    ns = NameService(locate_buffer_server=lambda m: buffer_server.address)
    gns = LocalGnsClient(ns)
    ns.add_all(
        [
            GnsRecord(
                machine="compute", path="/job/remote-in.dat", mode=IOMode.REMOTE,
                remote_host="store1", remote_path="/in/source.dat",
            ),
            GnsRecord(
                machine="compute", path="/job/copied-in.dat", mode=IOMode.COPY,
                remote_host="store1", remote_path="/in/source.dat",
            ),
            GnsRecord(
                machine="compute", path="/job/replica-remote.dat",
                mode=IOMode.REMOTE_REPLICA, logical_name="lfn://big",
            ),
            GnsRecord(
                machine="compute", path="/job/replica-local.dat",
                mode=IOMode.LOCAL_REPLICA, logical_name="lfn://big",
                local_path="/cache/big.dat",
            ),
            GnsRecord(
                machine="*", path="/job/stream.dat", mode=IOMode.BUFFER,
                buffer=BufferEndpoint(stream="six-modes", cache=True),
            ),
        ]
    )

    selector = ReplicaSelector(catalog, nws)

    def ctx(machine):
        return GridContext(
            machine=machine,
            gns=gns,
            hosts=hosts,
            gridftp={name: s.address for name, s in servers.items()},
            buffer_locator=lambda m: buffer_server.address,
            selector=selector,
            scratch_dir=tmp_path / "scratch",
        )

    fms = {name: FileMultiplexer(ctx(name)) for name in ("compute", "store2")}
    yield {"fms": fms, "hosts": hosts, "nws": nws, "ns": ns}
    for fm in fms.values():
        fm.close()
    for s in servers.values():
        s.stop()
    buffer_server.stop()


class TestAllSixModes:
    @pytest.mark.parametrize(
        "world", ["new-new", "old-server", "old-client"], indirect=True
    )
    def test_full_workflow(self, world):
        fm = world["fms"]["compute"]
        fm_remote = world["fms"]["store2"]
        modes_used = []

        # 1. LOCAL: write a scratch file.
        f = fm.open("/job/local-scratch.dat", "w")
        modes_used.append(f.io_mode)
        f.write(b"L" * 100)
        f.close()

        # 2. COPY: read a file copied in from store1.
        f = fm.open("/job/copied-in.dat", "r")
        modes_used.append(f.io_mode)
        assert f.read() == b"S" * 4096
        f.close()

        # 3. REMOTE: proxy-read the same source without copying.
        f = fm.open("/job/remote-in.dat", "r")
        modes_used.append(f.io_mode)
        assert f.read(16) == b"S" * 16
        f.close()

        # 4. REMOTE_REPLICA: NWS prefers store1 (8 MB/s vs 1 MB/s).
        f = fm.open("/job/replica-remote.dat", "r")
        modes_used.append(f.io_mode)
        assert f.read(8) == b"1" * 8
        f.close()

        # 5. LOCAL_REPLICA: pick best replica, copy it locally.
        f = fm.open("/job/replica-local.dat", "r")
        modes_used.append(f.io_mode)
        assert f.read(8) == b"1" * 8
        f.close()
        assert world["hosts"].host("compute").resolve("/cache/big.dat").exists()

        # 6. BUFFER: stream from store2's writer to compute's reader.
        def produce():
            w = fm_remote.open("/job/stream.dat", "w")
            w.write(b"stream-payload")
            w.close()

        t = threading.Thread(target=produce)
        t.start()
        r = fm.open("/job/stream.dat", "r")
        modes_used.append(r.io_mode)
        assert r.read(14) == b"stream-payload"
        r.close()
        t.join(timeout=10)

        assert set(modes_used) == set(IOMode), "all six IO modes must be exercised"

    def test_dynamic_remap_mid_read(self, world):
        """Read-only replicated open re-maps to a better replica when
        the NWS forecast flips (Section 3.1)."""
        fm = world["fms"]["compute"]
        f = fm.open("/job/replica-remote.dat", "r")
        first = f.read(4)
        assert first == b"1" * 4  # started on store1
        # store1 collapses; store2 becomes much better.
        for i in range(10, 26):
            world["nws"].record(
                "store1", "compute", Measurement(time=i, bandwidth=1e4, latency=0.9)
            )
            world["nws"].record(
                "store2", "compute", Measurement(time=i, bandwidth=9e6, latency=0.005)
            )
        # The remap hook fires every `remap_every` reads.
        data = b""
        for _ in range(130):
            chunk = f.read(4)
            if not chunk:
                break
            data += chunk
        f.close()
        assert f.stats.remaps >= 1
        assert b"2" in data  # later bytes came from store2's replica

    def test_rewiring_without_code_change(self, world):
        """The same reader function works when the GNS re-points its
        file from LOCAL to REMOTE — configuration only."""
        fm = world["fms"]["compute"]

        def legacy_reader():
            f = fm.open("/job/flex.dat", "r")
            try:
                return f.read()
            finally:
                f.close()

        host = world["hosts"].host("compute")
        host.resolve("/job/flex.dat").parent.mkdir(parents=True, exist_ok=True)
        host.resolve("/job/flex.dat").write_bytes(b"local version")
        assert legacy_reader() == b"local version"

        world["ns"].add(
            GnsRecord(
                machine="compute", path="/job/flex.dat", mode=IOMode.REMOTE,
                remote_host="store1", remote_path="/in/source.dat",
            )
        )
        assert legacy_reader() == b"S" * 4096


class TestObservabilityCoverage:
    """One registry snapshot must carry non-zero series from every
    instrumented layer: FM, transport, gridbuffer, workflow runner."""

    LAYERS = {
        "fm": ("fm_opens_total", "fm_ops_total", "fm_bytes_total"),
        "transport": (
            "gridftp_rpc_seconds",
            "gridftp_rpc_bytes_total",
            "rpc_client_calls_total",
        ),
        "gridbuffer": ("buffer_bytes_written_total", "buffer_blocks_stored_total"),
        "workflow": ("workflow_tasks_total", "workflow_task_seconds"),
    }

    @staticmethod
    def _series_total(family):
        total = 0.0
        for series in family["series"]:
            value = series["value"]
            total += value["count"] if isinstance(value, dict) else value
        return total

    def test_snapshot_covers_all_layers(self, world):
        from repro import obs
        from repro.workflow.runner import RealRunner
        from repro.workflow.scheduler import plan_workflow
        from repro.workflow.spec import FileUse, Stage, Workflow

        fm = world["fms"]["compute"]

        # FM + transport: proxy-read a remote file over GridFTP.
        f = fm.open("/job/remote-in.dat", "r")
        assert f.read() == b"S" * 4096
        f.close()

        # GridBuffer: stream a payload from store2's writer.
        def produce():
            w = world["fms"]["store2"].open("/job/stream.dat", "w")
            w.write(b"obs-payload")
            w.close()

        t = threading.Thread(target=produce)
        t.start()
        r = fm.open("/job/stream.dat", "r")
        assert r.read(11) == b"obs-payload"
        r.close()
        t.join(timeout=10)

        # Workflow runner: a real two-stage buffer-coupled run.
        def producer(io):
            with io.open("data.txt", "w") as fh:
                fh.write("x" * 512)

        def consumer(io):
            with io.open("data.txt", "r") as fh:
                assert len(fh.read()) == 512

        wf = Workflow(
            "obs-cov",
            [
                Stage("produce", writes=(FileUse("data.txt"),), func=producer),
                Stage("consume", reads=(FileUse("data.txt"),), func=consumer),
            ],
        )
        plan = plan_workflow(
            wf, {"produce": "m1", "consume": "m2"}, coupling={"data.txt": "buffer"}
        )
        runner = RealRunner(plan)
        result = runner.run()
        assert result.ok, result.errors
        runner.deployment.stop()

        snap = obs.snapshot()
        for layer, names in self.LAYERS.items():
            for name in names:
                family = snap.get(name)
                assert family and family["series"], f"{layer}: no series for {name}"
                assert self._series_total(family) > 0, f"{layer}: {name} is all zero"
