"""The climate workflow (paper Section 5.3) and its experiments.

C-CAM → cc2lam → DARLAM, coupled by two 150 MB per-step streams, with
DARLAM re-reading 30 MB of its input (the cache-file path) — Figure 6b.

* :func:`climate_workflow` — real runnable stages (small grids).
* :func:`climate_sim_workflow` — calibrated work/byte annotations
  (C-CAM ≈ 994 brecca-seconds, cc2lam ≈ 8, DARLAM ≈ 466, fitted from
  Table 3's brecca column).
* :data:`TABLE3_MACHINES`, :data:`TABLE5_PAIRINGS` — the experiment
  grids of Tables 3-5, with the paper's measured values for comparison.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ...workflow.scheduler import Coupling, ExecutionPlan, plan_workflow
from ...workflow.spec import FileUse, Stage, Workflow
from .ccam import run_ccam
from .cc2lam import run_cc2lam
from .darlam import run_darlam

__all__ = [
    "climate_workflow",
    "climate_sim_workflow",
    "TABLE3_MACHINES",
    "TABLE3_PAPER",
    "TABLE4_PAPER",
    "TABLE5_PAIRINGS",
    "TABLE5_PAPER",
    "sequential_plan",
    "concurrent_plan",
    "split_plan",
]

MB = 1024 * 1024

# Calibrated annotations (brecca-seconds / bytes); see DESIGN.md §5.
CCAM_WORK = 994.0
CC2LAM_WORK = 8.0
DARLAM_WORK = 466.0
DARLAM_TAIL = 0.15
STREAM_BYTES = 150 * MB
DARLAM_OUT_BYTES = 100 * MB
DARLAM_REREAD_BYTES = 30 * MB
N_STEPS = 240


def climate_workflow() -> Workflow:
    """Real, runnable climate pipeline (laptop-sized grids)."""
    return Workflow(
        "climate",
        [
            Stage("ccam", writes=(FileUse("ccam_hist"),), func=run_ccam),
            Stage(
                "cc2lam",
                reads=(FileUse("ccam_hist"),),
                writes=(FileUse("lam_input"),),
                func=run_cc2lam,
            ),
            Stage(
                "darlam",
                reads=(FileUse("lam_input"),),
                writes=(FileUse("darlam_out"),),
                func=run_darlam,
            ),
        ],
    )


def climate_sim_workflow() -> Workflow:
    """Timing-annotated pipeline for the Table 3/4/5 simulations."""
    return Workflow(
        "climate-sim",
        [
            Stage(
                "ccam",
                writes=(FileUse("ccam_hist", STREAM_BYTES),),
                work=CCAM_WORK,
                chunks=N_STEPS,
            ),
            Stage(
                "cc2lam",
                reads=(FileUse("ccam_hist", STREAM_BYTES),),
                writes=(FileUse("lam_input", STREAM_BYTES),),
                work=CC2LAM_WORK,
                chunks=N_STEPS,
            ),
            Stage(
                "darlam",
                reads=(FileUse("lam_input", STREAM_BYTES, reread_bytes=DARLAM_REREAD_BYTES),),
                writes=(FileUse("darlam_out", DARLAM_OUT_BYTES),),
                work=DARLAM_WORK,
                chunks=N_STEPS,
                tail_fraction=DARLAM_TAIL,
            ),
        ],
    )


#: Machines evaluated in Tables 3 and 4.
TABLE3_MACHINES = ["dione", "brecca", "freak", "bouscat", "vpac27"]

#: Paper Table 3 (seconds): ccam, cc2lam, darlam, total — sequential.
TABLE3_PAPER: Dict[str, Tuple[int, int, int, int]] = {
    "dione": (1701, 8, 796, 2505),
    "brecca": (994, 8, 466, 1464),
    "freak": (1831, 30, 818, 2679),
    "bouscat": (4049, 12, 1912, 5973),
    "vpac27": (3922, 11, 1860, 5793),
}

#: Paper Table 4 (seconds): cumulative DARLAM finish — (files, buffers).
TABLE4_PAPER: Dict[str, Tuple[int, int]] = {
    "dione": (4097, 2952),
    "brecca": (1678, 1377),
    "freak": (3159, 2430),
    "bouscat": (6927, 5399),
    "vpac27": (9889, 8115),
}

#: Table 5 pairings: (ccam+cc2lam machine, darlam machine).
TABLE5_PAIRINGS: List[Tuple[str, str]] = [
    ("dione", "vpac27"),
    ("brecca", "dione"),
    ("brecca", "bouscat"),
    ("dione", "brecca"),
    ("brecca", "vpac27"),
    ("brecca", "freak"),
]

#: Paper Table 5 (seconds): total (DARLAM finish) — (files+copy, buffers).
TABLE5_PAPER: Dict[Tuple[str, str], Tuple[int, int]] = {
    ("dione", "vpac27"): (3629, 2927),
    ("brecca", "dione"): (1848, 1510),
    ("brecca", "bouscat"): (3364, 4221),
    ("dione", "brecca"): (2225, 2364),
    ("brecca", "vpac27"): (2877, 2443),
    ("brecca", "freak"): (2035, 2505),
}


def sequential_plan(machine: str) -> ExecutionPlan:
    """Table 3: all models on one machine, sequential local files."""
    wf = climate_sim_workflow()
    return plan_workflow(wf, {s: machine for s in wf.stages}, default="local")


def concurrent_plan(machine: str, mechanism: Coupling) -> ExecutionPlan:
    """Table 4: all models concurrent on one machine.

    ``mechanism`` is ``"file-stream"`` (the paper's Files columns) or
    ``"buffer"``.
    """
    wf = climate_sim_workflow()
    coupling = {f: mechanism for f in wf.pipeline_files()}
    return plan_workflow(wf, {s: machine for s in wf.stages}, coupling=coupling)


def split_plan(src: str, dst: str, mechanism: Coupling) -> ExecutionPlan:
    """Table 5: C-CAM+cc2lam on ``src``, DARLAM on ``dst``.

    ``mechanism="copy"`` reproduces the Files rows (sequential run +
    GridFTP copy of the intermediate file); ``"buffer"`` streams.
    """
    wf = climate_sim_workflow()
    placement = {"ccam": src, "cc2lam": src, "darlam": dst}
    if mechanism == "buffer":
        coupling: Dict[str, Coupling] = {"ccam_hist": "buffer", "lam_input": "buffer"}
    else:
        coupling = {"ccam_hist": "local", "lam_input": "copy"}
    return plan_workflow(wf, placement, coupling=coupling)
