"""Architecture-conformance checks for the paper's Figures 2-4.

These tests pin the *structural* claims of the paper's architecture
diagrams: which components exist, which talks to which, and which
choices are made where.  They guard against refactors quietly breaking
the reproduction's fidelity to the design.
"""

import inspect


from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.core.multiplexer import FileMultiplexer, GridContext
from repro.gns.records import IOMode
from repro.gns.records import IOMode


class TestFigure2FileMultiplexer:
    """Fig. 2: the FM intercepts read/write/seek/open/close and routes
    to local files, remote files, or a remote application process."""

    def test_fm_exposes_open(self):
        assert callable(getattr(FileMultiplexer, "open"))

    def test_fmfile_exposes_posix_surface(self):
        from repro.core.multiplexer import FMFile

        for op in ("read", "write", "seek", "tell", "close"):
            assert callable(getattr(FMFile, op)), f"FMFile lacks {op}"

    def test_fm_dispatches_every_mode(self):
        """Every IOMode has a dedicated opener on the FM."""
        source = inspect.getsource(FileMultiplexer.open)
        for mode in IOMode:
            assert f"IOMode.{mode.name}" in source, f"open() does not dispatch {mode}"

    def test_per_open_independent_choice(self, hosts, gns):
        """'Each OPEN operation makes an independent choice.'"""
        fm = FileMultiplexer(GridContext(machine="alpha", gns=gns, hosts=hosts))
        f1 = fm.open("/a.txt", "w")
        f2 = fm.open("/b.txt", "w")
        assert f1.record is not f2.record
        f1.close()
        f2.close()
        fm.close()


class TestFigure3DirectConnections:
    """Fig. 3: writer and reader both open a plain file name; a socket
    plus a reader-side cache connects them."""

    def test_cache_lives_with_buffer_service(self):
        from repro.gridbuffer.server import GridBufferServer

        sig = inspect.signature(GridBufferServer.__init__)
        assert "cache_dir" in sig.parameters

    def test_default_placement_is_reader_end(self):
        """Section 3.1: 'it is usually more efficient to place it at
        the reader end' — our default."""
        from repro.gns.records import BufferEndpoint

        assert BufferEndpoint(stream="s").placement == "reader"


class TestFigure4GriddlesArchitecture:
    """Fig. 4: the FM contains Local File Client, Remote File Client,
    Grid Buffer Client and GNS Client; GridFTP is the standard server,
    and the Grid Buffer stores blocks in a hash table."""

    def test_fm_owns_the_three_clients(self):
        # Structural: the FM module wires all three clients.
        module = inspect.getmodule(FileMultiplexer)
        text = inspect.getsource(module)
        assert "LocalFileClient" in text
        assert "RemoteFileClient" in text
        assert "GridBufferClientPool" in text

    def test_gns_consulted_on_open(self, hosts, gns):
        calls = []
        real_resolve = gns.resolve

        def spy(machine, path):
            calls.append((machine, path))
            return real_resolve(machine, path)

        gns.resolve = spy
        fm = FileMultiplexer(GridContext(machine="alpha", gns=gns, hosts=hosts))
        fm.open("/spy.txt", "w").close()
        fm.close()
        assert calls == [("alpha", "/spy.txt")]

    def test_fm_treats_gns_as_read_only(self):
        """The FM never mutates GNS records."""
        module = inspect.getmodule(FileMultiplexer)
        text = inspect.getsource(module)
        assert ".gns.add(" not in text
        assert ".gns.remove(" not in text

    def test_grid_buffer_uses_hash_table(self):
        """Section 4: 'data is stored in a hash table rather than a
        sequential buffer'."""
        from repro.gridbuffer.service import GridBufferService

        svc = GridBufferService()
        svc.create_stream("s")
        stream = svc._streams["s"]
        assert isinstance(stream.blocks, dict)

    def test_gridftp_is_generic_not_buffer_specific(self):
        """'the GridFTP server is a standard part of the distribution,
        not a special component' — our transport has no dependency on
        the FM or the Grid Buffer."""
        import repro.transport.gridftp as gridftp

        text = inspect.getsource(gridftp)
        assert "gridbuffer" not in text
        assert "multiplexer" not in text


class TestSixModesEnumerated:
    """Section 2 lists exactly six IO mechanisms."""

    def test_mode_list(self):
        expected = {
            "local",
            "copy",
            "remote",
            "remote-replica",
            "local-replica",
            "buffer",
        }
        assert {m.value for m in IOMode} == expected
