"""Tests for the ASCII Gantt renderer + third-party GridFTP copies."""

import pytest

from repro.bench.gantt import render_gantt
from repro.workflow.scheduler import plan_workflow
from repro.workflow.simrunner import SimReport, simulate_plan
from repro.workflow.spec import FileUse, Stage, Workflow

MB = 1024 * 1024


def report_for(coupling):
    wf = Workflow(
        "g",
        [
            Stage("p", writes=(FileUse("f", 10 * MB),), work=100, chunks=10),
            Stage("q", reads=(FileUse("f", 10 * MB),), work=100, chunks=10),
        ],
    )
    placement = {"p": "brecca", "q": "dione"} if coupling != "local" else {"p": "brecca", "q": "brecca"}
    plan = plan_workflow(wf, placement, coupling={"f": coupling})
    return simulate_plan(plan)


class TestGantt:
    def test_sequential_bars_stack(self):
        text = render_gantt(report_for("local"))
        lines = text.splitlines()
        assert any("p@brecca" in l for l in lines)
        assert any("q@brecca" in l for l in lines)
        p_line = next(l for l in lines if "p@brecca" in l)
        q_line = next(l for l in lines if "q@brecca" in l)
        # q's bar starts after p's bar ends.
        assert q_line.index("#") >= p_line.rindex("#")

    def test_pipelined_bars_overlap(self):
        text = render_gantt(report_for("buffer"))
        lines = text.splitlines()
        p_line = next(l for l in lines if "p@brecca" in l)
        q_line = next(l for l in lines if "q@dione" in l)
        assert q_line.index("#") < p_line.rindex("#")

    def test_copy_row_present(self):
        text = render_gantt(report_for("copy"))
        assert "copy:f" in text

    def test_empty_report(self):
        wf = Workflow("e", [Stage("only", work=1)])
        plan = plan_workflow(wf, {"only": "brecca"})
        empty = SimReport(plan=plan)
        assert "empty" in render_gantt(empty)


class TestThirdPartyCopy:
    def test_server_to_server_transfer(self, tmp_path):
        from repro.transport.gridftp import GridFtpClient, GridFtpServer

        src_root = tmp_path / "src"
        dst_root = tmp_path / "dst"
        src_root.mkdir()
        (src_root / "data.bin").write_bytes(bytes(i % 199 for i in range(120_000)))
        with GridFtpServer(src_root) as src, GridFtpServer(dst_root) as dst:
            with GridFtpClient(*dst.address) as client:
                n = client.third_party_copy(
                    src.address[0], src.address[1], "/data.bin", "/pulled/data.bin"
                )
        assert n == 120_000
        assert (dst_root / "pulled" / "data.bin").read_bytes() == (
            src_root / "data.bin"
        ).read_bytes()

    def test_third_party_missing_source(self, tmp_path):
        from repro.transport.gridftp import GridFtpClient, GridFtpServer
        from repro.transport.tcp import RpcError

        with GridFtpServer(tmp_path / "a") as src, GridFtpServer(tmp_path / "b") as dst:
            with GridFtpClient(*dst.address) as client:
                with pytest.raises(RpcError):
                    client.third_party_copy(
                        src.address[0], src.address[1], "/missing", "/x"
                    )

    def test_third_party_with_parallel_streams(self, tmp_path):
        from repro.transport.gridftp import GridFtpClient, GridFtpServer

        src_root = tmp_path / "src"
        src_root.mkdir()
        payload = bytes(i % 251 for i in range(300_000))
        (src_root / "big").write_bytes(payload)
        with GridFtpServer(src_root) as src, GridFtpServer(tmp_path / "dst") as dst:
            with GridFtpClient(*dst.address, block_size=8192) as client:
                client.third_party_copy(
                    src.address[0], src.address[1], "/big", "/big", streams=4
                )
        assert (tmp_path / "dst" / "big").read_bytes() == payload
