"""Pipelined remote-IO correctness: prefetch, coalescing, parallel streams.

Every scenario checks byte-identity against plain local reads — the
pipeline must be invisible except in the counters.
"""

import hashlib
import io
import threading

import pytest

from repro.core.remote_client import RemoteFileClient
from repro.core.remote_io import WriteCoalescer
from repro.transport.gridftp import GridFtpClient, GridFtpServer

PATTERN = bytes(i % 256 for i in range(64_000))
BLOCK = 1024


@pytest.fixture()
def export(tmp_path):
    root = tmp_path / "export"
    root.mkdir()
    (root / "data.bin").write_bytes(PATTERN)
    server = GridFtpServer(root)
    with server:
        yield server, root


@pytest.fixture()
def remote(export, tmp_path):
    server, _ = export
    client = GridFtpClient(*server.address, block_size=BLOCK)
    yield RemoteFileClient(client, scratch_dir=tmp_path / "scratch")
    client.close()


class TestPrefetchCorrectness:
    def test_sequential_read_pipelines_and_is_byte_identical(self, remote):
        f = remote.open_proxy("/data.bin", "r", block_size=BLOCK)
        out = bytearray()
        while True:
            chunk = f.read(BLOCK)
            if not chunk:
                break
            out += chunk
        assert bytes(out) == PATTERN
        assert f.prefetch_hits > 0, "sequential read never engaged the pipeline"
        # Demand RPCs must be well below one per block once the window opens.
        nblocks = -(-len(PATTERN) // BLOCK)
        assert f.rpc_reads < nblocks
        f.close()

    def test_sequential_then_random_seek_interleave(self, remote):
        f = remote.open_proxy("/data.bin", "r", block_size=BLOCK)
        local = io.BytesIO(PATTERN)
        # Sequential warm-up to open the prefetch window…
        for _ in range(8):
            assert f.read(BLOCK) == local.read(BLOCK)
        # …then hop around: forward, backward, unaligned, repeat.
        for offset in (40_000, 3, 63_000, 512, 40_000, 31_999):
            f.seek(offset)
            local.seek(offset)
            assert f.read(700) == local.read(700)
        # …then sequential again from an arbitrary point.
        f.seek(10_000)
        local.seek(10_000)
        for _ in range(10):
            assert f.read(BLOCK) == local.read(BLOCK)
        f.close()

    def test_reads_straddling_block_and_eof_boundaries(self, remote):
        f = remote.open_proxy("/data.bin", "r", block_size=BLOCK)
        local = io.BytesIO(PATTERN)
        # Straddle every block boundary with an odd-sized read.
        f.seek(BLOCK - 100)
        local.seek(BLOCK - 100)
        for _ in range(20):
            assert f.read(333) == local.read(333)
        # Read straddling EOF: asks past the end, gets the tail.
        f.seek(len(PATTERN) - 50)
        assert f.read(500) == PATTERN[-50:]
        # Read exactly at EOF.
        assert f.read(10) == b""
        # read(-1) from mid-file.
        f.seek(60_000)
        assert f.read() == PATTERN[60_000:]
        f.close()

    def test_write_invalidates_in_flight_prefetch(self, remote, export):
        _, root = export
        f = remote.open_proxy("/data.bin", "r+", block_size=BLOCK)
        # Sequential reads to open the window and put blocks in flight.
        f.read(BLOCK)
        f.read(BLOCK)
        # Overwrite a block that is (or may be) in the prefetch window.
        target = 5 * BLOCK
        f.seek(target)
        f.write(b"\xaa" * BLOCK)
        f.seek(target)
        assert f.read(BLOCK) == b"\xaa" * BLOCK, "stale prefetched block served"
        f.close()
        on_disk = (root / "data.bin").read_bytes()
        assert on_disk[target : target + BLOCK] == b"\xaa" * BLOCK
        assert on_disk[:BLOCK] == PATTERN[:BLOCK]

    def test_concurrent_readers_share_one_client(self, remote):
        digests = {}
        errors = []

        def reader(idx: int) -> None:
            try:
                f = remote.open_proxy("/data.bin", "r", block_size=BLOCK)
                h = hashlib.sha256()
                while True:
                    chunk = f.read(3 * BLOCK + 7)
                    if not chunk:
                        break
                    h.update(chunk)
                f.close()
                digests[idx] = h.hexdigest()
            except BaseException as exc:  # noqa: BLE001 - surface in main thread
                errors.append(exc)

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        expected = hashlib.sha256(PATTERN).hexdigest()
        assert all(d == expected for d in digests.values())

    def test_prefetch_disabled_still_correct(self, remote):
        f = remote.open_proxy("/data.bin", "r", block_size=BLOCK, prefetch=False)
        assert f.read() == PATTERN
        assert f.prefetch_hits == 0
        f.close()

    def test_prefetch_counters_observable(self, remote):
        f = remote.open_proxy("/data.bin", "r", block_size=BLOCK)
        f.read(8 * BLOCK)
        assert f.rpc_reads >= 1
        assert f.prefetch_hits + f.rpc_reads >= 8
        assert f.prefetch_wasted >= 0
        f.close()


class TestWriteCoalescing:
    def test_small_sequential_writes_batched(self, remote, export):
        _, root = export
        f = remote.open_proxy("/out.bin", "w", block_size=BLOCK)
        payload = bytes(i % 97 for i in range(10 * BLOCK))
        for i in range(0, len(payload), 64):  # 160 tiny writes
            f.write(payload[i : i + 64])
        f.close()
        assert (root / "out.bin").read_bytes() == payload
        # 10 full blocks => ~10 put RPCs, not 160.
        assert f.put_rpcs <= 11

    def test_flush_pushes_pending_writes(self, remote, export):
        _, root = export
        f = remote.open_proxy("/out.bin", "w", block_size=BLOCK)
        f.write(b"abc")
        f.flush()
        assert (root / "out.bin").read_bytes() == b"abc"
        f.close()

    def test_seek_flushes_then_read_sees_own_writes(self, remote):
        f = remote.open_proxy("/out.bin", "w+", block_size=BLOCK)
        f.write(b"hello world")
        f.seek(0)
        assert f.read(11) == b"hello world"
        f.close()

    def test_non_contiguous_writes_correct(self, remote, export):
        _, root = export
        f = remote.open_proxy("/out.bin", "w", block_size=BLOCK)
        f.write(b"AAAA")
        f.seek(100)
        f.write(b"BBBB")
        f.seek(4)
        f.write(b"CCCC")
        f.close()
        data = (root / "out.bin").read_bytes()
        assert data[:8] == b"AAAACCCC"
        assert data[100:104] == b"BBBB"

    def test_coalescer_unit_behaviour(self):
        flushed = []
        c = WriteCoalescer(lambda off, data: flushed.append((off, bytes(data))), 8)
        c.write(0, b"ab")
        c.write(2, b"cd")
        assert flushed == []  # still below one block
        c.write(4, b"efghijkl")  # crosses the block boundary
        assert flushed == [(0, b"abcdefgh")]
        c.flush()
        assert flushed == [(0, b"abcdefgh"), (8, b"ijkl")]
        assert c.writes_coalesced >= 1


class TestAppendModes:
    """POSIX append must create a missing file (regression)."""

    def test_proxy_append_creates_missing_file(self, remote, export):
        _, root = export
        f = remote.open_proxy("/fresh.log", "a", block_size=BLOCK)
        f.write(b"line-1\n")
        f.close()
        assert (root / "fresh.log").read_bytes() == b"line-1\n"

    def test_proxy_append_plus_creates_missing_file(self, remote, export):
        _, root = export
        f = remote.open_proxy("/fresh2.log", "a+", block_size=BLOCK)
        f.write(b"x")
        f.close()
        assert (root / "fresh2.log").read_bytes() == b"x"

    def test_proxy_append_existing_appends(self, remote, export):
        _, root = export
        f = remote.open_proxy("/data.bin", "a", block_size=BLOCK)
        f.write(b"TAIL")
        f.close()
        assert (root / "data.bin").read_bytes() == PATTERN + b"TAIL"

    def test_copy_append_creates_missing_file(self, remote, export):
        _, root = export
        f = remote.open_copy("/made-by-copy.log", "a")
        f.write(b"created\n")
        f.close()
        assert (root / "made-by-copy.log").read_bytes() == b"created\n"

    def test_copy_append_plus_creates_missing_file(self, remote, export):
        _, root = export
        f = remote.open_copy("/made-by-copy2.log", "a+")
        f.write(b"z")
        f.close()
        assert (root / "made-by-copy2.log").read_bytes() == b"z"

    def test_copy_append_missing_then_empty_close_creates_empty(self, remote, export):
        _, root = export
        f = remote.open_copy("/empty-append.log", "a")
        f.close()
        assert (root / "empty-append.log").read_bytes() == b""

    def test_read_modes_still_raise_on_missing(self, remote):
        with pytest.raises(FileNotFoundError):
            remote.open_proxy("/nope", "r")
        with pytest.raises(FileNotFoundError):
            remote.open_copy("/nope", "r")


class TestBulkTransfers:
    def test_fetch_detects_short_copy(self, export, tmp_path):
        server, root = export
        client = GridFtpClient(*server.address, block_size=BLOCK)

        # Shrink the file after size() is measured: the single-stream
        # loop's early break must not silently return the full total.
        real_read = client.read_block
        state = {"shrunk": False}

        def shrinking_read(path, offset, length):
            if not state["shrunk"] and offset >= 8 * BLOCK:
                (root / "data.bin").write_bytes(PATTERN[: 8 * BLOCK])
                state["shrunk"] = True
            return real_read(path, offset, length)

        client.read_block = shrinking_read
        with pytest.raises(IOError, match="short fetch"):
            client.fetch_file("/data.bin", tmp_path / "short.bin")
        client.close()

    def test_parallel_store_roundtrip(self, export, tmp_path):
        server, root = export
        payload = bytes((i * 7) % 256 for i in range(300_000))
        src = tmp_path / "upload.bin"
        src.write_bytes(payload)
        with GridFtpClient(*server.address, parallel_streams=4, block_size=8192) as client:
            n = client.store_file(src, "/incoming/upload.bin")
        assert n == len(payload)
        stored = (root / "incoming" / "upload.bin").read_bytes()
        assert hashlib.sha256(stored).hexdigest() == hashlib.sha256(payload).hexdigest()

    def test_parallel_store_overwrites_longer_file(self, export, tmp_path):
        server, root = export
        (root / "big-old.bin").write_bytes(b"\xff" * 500_000)
        payload = bytes(i % 251 for i in range(100_000))
        src = tmp_path / "new.bin"
        src.write_bytes(payload)
        with GridFtpClient(*server.address, parallel_streams=3, block_size=4096) as client:
            client.store_file(src, "/big-old.bin")
        assert (root / "big-old.bin").read_bytes() == payload

    def test_store_empty_file(self, export, tmp_path):
        server, root = export
        src = tmp_path / "empty.bin"
        src.write_bytes(b"")
        with GridFtpClient(*server.address, parallel_streams=4) as client:
            assert client.store_file(src, "/empty.out") == 0
        assert (root / "empty.out").read_bytes() == b""
